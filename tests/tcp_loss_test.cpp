// iWARP TCP reliability property suite: parameterized loss-rate x seed
// sweep. Whatever the fabric drops, the byte stream delivered to user
// memory must be exact, and progress must never wedge.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "core/cluster.hpp"

namespace fabsim::core {
namespace {

class LossSweep : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

INSTANTIATE_TEST_SUITE_P(Grid, LossSweep,
                         ::testing::Combine(::testing::Values(0.002, 0.01, 0.04, 0.10),
                                            ::testing::Values(1u, 42u, 20260706u)),
                         [](const auto& sweep) {
                           return "loss" +
                                  std::to_string(static_cast<int>(std::get<0>(sweep.param) *
                                                                  1000)) +
                                  "permil_seed" + std::to_string(std::get<1>(sweep.param));
                         });

TEST_P(LossSweep, RdmaWriteSurvivesLoss) {
  const auto [loss, seed] = GetParam();
  NetworkProfile p = iwarp_profile();
  p.rnic.loss_rate = loss;
  p.rnic.rto = us(250);
  p.rnic.rng_seed = seed;
  Cluster cluster(2, p);

  verbs::CompletionQueue cq0(cluster.engine()), cq1(cluster.engine());
  auto qp0 = cluster.device(0).create_qp(cq0, cq0);
  auto qp1 = cluster.device(1).create_qp(cq1, cq1);
  cluster.device(0).establish(*qp0, *qp1);

  const std::uint32_t len = 192 * 1024;
  auto& src = cluster.node(0).mem().alloc(len);
  auto& dst = cluster.node(1).mem().alloc(len);
  std::vector<std::byte> payload(len);
  for (std::size_t i = 0; i < len; ++i) {
    payload[i] = static_cast<std::byte>((i * 13 + seed) & 0xff);
  }
  std::memcpy(cluster.node(0).mem().window(src.addr(), len).data(), payload.data(), len);

  cluster.engine().spawn([](Cluster& c, verbs::QueuePair& qp, std::uint64_t s, std::uint64_t d,
                            std::uint32_t n) -> Task<> {
    auto lkey = co_await c.device(0).reg_mr(s, n);
    auto rkey = co_await c.device(1).reg_mr(d, n);
    auto watch = c.device(1).watch_placement(d, n);
    co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                        .opcode = verbs::Opcode::kRdmaWrite,
                                        .sge = {s, n, lkey},
                                        .remote_addr = d,
                                        .rkey = rkey});
    co_await watch->wait();
  }(cluster, *qp0, src.addr(), dst.addr(), len));
  cluster.engine().run();

  ASSERT_EQ(cluster.engine().live_processes(), 0u) << "transfer wedged under loss";
  auto view = cluster.node(1).mem().window(dst.addr(), len);
  EXPECT_EQ(std::memcmp(view.data(), payload.data(), len), 0);
  if (loss >= 0.01) {
    EXPECT_GT(cluster.rnic(0).retransmits(), 0u) << "loss this high must trigger go-back-N";
  }
}

TEST_P(LossSweep, SendRecvSurvivesLoss) {
  const auto [loss, seed] = GetParam();
  NetworkProfile p = iwarp_profile();
  p.rnic.loss_rate = loss;
  p.rnic.rto = us(250);
  p.rnic.rng_seed = seed + 7;
  Cluster cluster(2, p);

  verbs::CompletionQueue cq0(cluster.engine()), cq1(cluster.engine());
  auto qp0 = cluster.device(0).create_qp(cq0, cq0);
  auto qp1 = cluster.device(1).create_qp(cq1, cq1);
  cluster.device(0).establish(*qp0, *qp1);

  const std::uint32_t msg = 5000;
  const int count = 12;
  auto& src = cluster.node(0).mem().alloc(msg);
  auto& dst = cluster.node(1).mem().alloc(static_cast<std::uint64_t>(msg) * count);

  cluster.engine().spawn([](Cluster& c, verbs::QueuePair& q0, verbs::QueuePair& q1,
                            verbs::CompletionQueue& rcq, std::uint64_t s, std::uint64_t d,
                            std::uint32_t m, int n) -> Task<> {
    auto lkey = co_await c.device(0).reg_mr(s, m);
    auto rkey = co_await c.device(1).reg_mr(d, static_cast<std::uint64_t>(m) * n);
    for (int i = 0; i < n; ++i) {
      co_await q1.post_recv(verbs::RecvWr{static_cast<std::uint64_t>(i),
                                          {d + static_cast<std::uint64_t>(i) * m, m, rkey}});
    }
    for (int i = 0; i < n; ++i) {
      co_await q0.post_send(verbs::SendWr{.wr_id = 100u + static_cast<std::uint32_t>(i),
                                          .opcode = verbs::Opcode::kSend,
                                          .sge = {s, m, lkey}});
    }
    // All receives must complete in FIFO order despite retransmissions.
    for (int i = 0; i < n; ++i) {
      auto completion = co_await verbs::next_completion(rcq, c.node(1).cpu(), ns(200));
      EXPECT_EQ(completion.wr_id, static_cast<std::uint64_t>(i)) << "receive order broken";
    }
  }(cluster, *qp0, *qp1, cq1, src.addr(), dst.addr(), msg, count));
  cluster.engine().run();
  EXPECT_EQ(cluster.engine().live_processes(), 0u);
}

TEST(TcpLoss, ThroughputDegradesMonotonically) {
  auto goodput = [](double loss) {
    NetworkProfile p = iwarp_profile();
    p.rnic.loss_rate = loss;
    p.rnic.rto = us(250);
    Cluster cluster(2, p);
    verbs::CompletionQueue cq0(cluster.engine()), cq1(cluster.engine());
    auto qp0 = cluster.device(0).create_qp(cq0, cq0);
    auto qp1 = cluster.device(1).create_qp(cq1, cq1);
    cluster.device(0).establish(*qp0, *qp1);
    const std::uint32_t len = 1 << 20;
    auto& src = cluster.node(0).mem().alloc(len, false);
    auto& dst = cluster.node(1).mem().alloc(len, false);
    Time elapsed = 0;
    cluster.engine().spawn([](Cluster& c, verbs::QueuePair& qp, std::uint64_t s,
                              std::uint64_t d, std::uint32_t n, Time* out) -> Task<> {
      auto lkey = co_await c.device(0).reg_mr(s, n);
      auto rkey = co_await c.device(1).reg_mr(d, n);
      auto watch = c.device(1).watch_placement(d, n);
      const Time start = c.engine().now();
      co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                          .opcode = verbs::Opcode::kRdmaWrite,
                                          .sge = {s, n, lkey},
                                          .remote_addr = d,
                                          .rkey = rkey});
      co_await watch->wait();
      *out = c.engine().now() - start;
    }(cluster, *qp0, src.addr(), dst.addr(), len, &elapsed));
    cluster.engine().run();
    return static_cast<double>(len) / to_us(elapsed);
  };
  const double clean = goodput(0.0);
  const double light = goodput(0.005);
  const double heavy = goodput(0.05);
  EXPECT_GT(clean, light);
  EXPECT_GT(light, heavy);
  EXPECT_GT(heavy, 10.0) << "must still make progress at 5% loss";
}

}  // namespace
}  // namespace fabsim::core

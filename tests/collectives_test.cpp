// Collective-operation correctness swept over networks and world sizes,
// including non-power-of-two worlds for the tree/ring algorithms.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "core/cluster.hpp"

namespace fabsim::core {
namespace {

class Collectives : public ::testing::TestWithParam<std::tuple<Network, int>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, Collectives,
    ::testing::Combine(::testing::Values(Network::kIwarp, Network::kIb, Network::kMxoe,
                                         Network::kMxom),
                       ::testing::Values(2, 3, 4, 5, 8)),
    [](const auto& sweep) {
      return std::string(network_name(std::get<0>(sweep.param))) + "_" +
             std::to_string(std::get<1>(sweep.param)) + "ranks";
    });

TEST_P(Collectives, BarrierSynchronizesEveryone) {
  const auto [network, ranks] = GetParam();
  NetworkProfile p = profile(network);
  p.mpi.eager_buffers = 128;  // keep the N^2 mesh light
  Cluster cluster(ranks, p);

  std::vector<Time> released(static_cast<std::size_t>(ranks), 0);
  std::vector<Time> arrived(static_cast<std::size_t>(ranks), 0);
  for (int r = 0; r < ranks; ++r) {
    cluster.engine().spawn([](Cluster& c, int me, std::vector<Time>& in,
                              std::vector<Time>& out) -> Task<> {
      co_await c.setup_mpi();
      // Stagger arrivals: rank r shows up r*50us late.
      co_await c.engine().sleep(us(50.0 * me));
      in[static_cast<std::size_t>(me)] = c.engine().now();
      co_await c.mpi_rank(me).barrier();
      out[static_cast<std::size_t>(me)] = c.engine().now();
    }(cluster, r, arrived, released));
  }
  cluster.engine().run();
  ASSERT_EQ(cluster.engine().live_processes(), 0u) << "barrier deadlock";

  // Nobody leaves the barrier before the last rank arrived.
  Time last_arrival = 0;
  for (Time t : arrived) last_arrival = std::max(last_arrival, t);
  for (int r = 0; r < ranks; ++r) {
    EXPECT_GE(released[static_cast<std::size_t>(r)], last_arrival)
        << "rank " << r << " escaped the barrier early";
  }
}

TEST_P(Collectives, BcastFromEveryRoot) {
  const auto [network, ranks] = GetParam();
  NetworkProfile p = profile(network);
  p.mpi.eager_buffers = 128;
  for (int root : {0, ranks - 1}) {
    Cluster cluster(ranks, p);
    std::vector<hw::Buffer*> bufs;
    for (int r = 0; r < ranks; ++r) bufs.push_back(&cluster.node(r).mem().alloc(512));
    int checked = 0;
    for (int r = 0; r < ranks; ++r) {
      cluster.engine().spawn([](Cluster& c, int me, int rt, std::vector<hw::Buffer*>& b,
                                int& ok) -> Task<> {
        co_await c.setup_mpi();
        auto w = c.node(me).mem().window(b[static_cast<std::size_t>(me)]->addr(), 512);
        std::memset(w.data(), me == rt ? 0x77 : 0x00, 512);
        co_await c.mpi_rank(me).bcast(rt, b[static_cast<std::size_t>(me)]->addr(), 512);
        EXPECT_EQ(std::to_integer<int>(w[0]), 0x77);
        EXPECT_EQ(std::to_integer<int>(w[511]), 0x77);
        ++ok;
      }(cluster, r, root, bufs, checked));
    }
    cluster.engine().run();
    EXPECT_EQ(checked, ranks) << "root " << root;
    EXPECT_EQ(cluster.engine().live_processes(), 0u);
  }
}

TEST_P(Collectives, AllgatherAssemblesAllBlocks) {
  const auto [network, ranks] = GetParam();
  NetworkProfile p = profile(network);
  p.mpi.eager_buffers = 128;
  Cluster cluster(ranks, p);
  constexpr std::uint32_t kBlock = 1024;
  std::vector<hw::Buffer*> mine, all;
  for (int r = 0; r < ranks; ++r) {
    mine.push_back(&cluster.node(r).mem().alloc(kBlock));
    all.push_back(&cluster.node(r).mem().alloc(kBlock * static_cast<std::uint32_t>(ranks)));
  }
  int checked = 0;
  for (int r = 0; r < ranks; ++r) {
    cluster.engine().spawn([](Cluster& c, int me, int n, std::vector<hw::Buffer*>& m,
                              std::vector<hw::Buffer*>& a, int& ok) -> Task<> {
      co_await c.setup_mpi();
      auto w = c.node(me).mem().window(m[static_cast<std::size_t>(me)]->addr(), kBlock);
      std::memset(w.data(), 0x40 + me, kBlock);
      co_await c.mpi_rank(me).allgather(m[static_cast<std::size_t>(me)]->addr(), kBlock,
                                        a[static_cast<std::size_t>(me)]->addr());
      for (int src = 0; src < n; ++src) {
        auto block = c.node(me).mem().window(
            a[static_cast<std::size_t>(me)]->addr() + static_cast<std::uint64_t>(src) * kBlock,
            kBlock);
        EXPECT_EQ(std::to_integer<int>(block[0]), 0x40 + src)
            << "rank " << me << " block " << src;
        EXPECT_EQ(std::to_integer<int>(block[kBlock - 1]), 0x40 + src);
      }
      ++ok;
    }(cluster, r, ranks, mine, all, checked));
  }
  cluster.engine().run();
  EXPECT_EQ(checked, ranks);
  EXPECT_EQ(cluster.engine().live_processes(), 0u);
}

TEST_P(Collectives, AllreduceSumsAnyWorldSize) {
  const auto [network, ranks] = GetParam();
  NetworkProfile p = profile(network);
  p.mpi.eager_buffers = 128;
  Cluster cluster(ranks, p);
  constexpr int kCount = 16;
  std::vector<hw::Buffer*> data, scratch;
  for (int r = 0; r < ranks; ++r) {
    data.push_back(&cluster.node(r).mem().alloc(kCount * sizeof(double)));
    scratch.push_back(&cluster.node(r).mem().alloc(kCount * sizeof(double)));
  }
  int checked = 0;
  for (int r = 0; r < ranks; ++r) {
    cluster.engine().spawn([](Cluster& c, int me, int n, std::vector<hw::Buffer*>& d,
                              std::vector<hw::Buffer*>& s, int& ok) -> Task<> {
      co_await c.setup_mpi();
      auto w = c.node(me).mem().window(d[static_cast<std::size_t>(me)]->addr(),
                                       kCount * sizeof(double));
      for (int i = 0; i < kCount; ++i) {
        const double v = (me + 1) * 1000.0 + i;
        std::memcpy(w.data() + i * sizeof(double), &v, sizeof(double));
      }
      co_await c.mpi_rank(me).allreduce_sum(d[static_cast<std::size_t>(me)]->addr(),
                                            s[static_cast<std::size_t>(me)]->addr(), kCount);
      for (int i = 0; i < kCount; ++i) {
        double got = 0;
        std::memcpy(&got, w.data() + i * sizeof(double), sizeof(double));
        double want = 0;
        for (int rr = 0; rr < n; ++rr) want += (rr + 1) * 1000.0 + i;
        EXPECT_DOUBLE_EQ(got, want) << "rank " << me << " element " << i;
      }
      ++ok;
    }(cluster, r, ranks, data, scratch, checked));
  }
  cluster.engine().run();
  EXPECT_EQ(checked, ranks);
  EXPECT_EQ(cluster.engine().live_processes(), 0u);
}

}  // namespace
}  // namespace fabsim::core

// FabricProf tests: the host-time profiler must observe, never perturb.
//
// The load-bearing properties, in order:
//   * a detached profiler (the default) leaves the simulated timeline
//     byte-identical — same digest, same final time, same event count;
//   * an *attached* profiler also leaves it byte-identical, at every
//     sampling stride — the sampling decision is a counter test, never
//     a clock read, so host-time measurement cannot leak into
//     simulated results;
//   * the prof.* counters actually populate and obey their conservation
//     laws (pops == posts + requeues when the queue drains);
//   * the counting-allocator seam tallies only while tracking is on and
//     only since attach;
//   * the Chrome-trace host lanes round-trip through minijson.
#include <gtest/gtest.h>

#include <vector>

#include "core/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/json.hpp"
#include "sim/metrics.hpp"
#include "sim/prof.hpp"
#include "sim/sync.hpp"
#include "sim/trace_export.hpp"

namespace fabsim {
namespace {

struct Fingerprint {
  Time finished;
  std::uint64_t digest;
  std::uint64_t events;
};

/// A mixed workload: raw posts, a sleep chain, and a mailbox ping-pong —
/// enough co-enabled events and coroutine churn to make any profiler
/// perturbation show up in the digest.
Fingerprint run_workload(Profiler* profiler) {
  Engine engine;
  if (profiler != nullptr) engine.set_profiler(profiler);
  std::uint64_t sink = 0;
  for (int i = 0; i < 500; ++i) {
    engine.post(us(static_cast<double>(i % 50)), /*scope=*/i % 4,
                [&sink, i] { sink += static_cast<std::uint64_t>(i); });
  }
  engine.spawn([](Engine& e) -> Task<> {
    for (int i = 0; i < 200; ++i) co_await e.sleep(ns(100));
  }(engine));
  Mailbox<int> a(engine), b(engine);
  engine.spawn([](Mailbox<int>& rx, Mailbox<int>& tx) -> Task<> {
    for (int i = 0; i < 100; ++i) {
      tx.send(i);
      co_await rx.recv();
    }
  }(a, b));
  engine.spawn([](Mailbox<int>& rx, Mailbox<int>& tx) -> Task<> {
    for (int i = 0; i < 100; ++i) {
      const int v = co_await rx.recv();
      tx.send(v);
    }
  }(b, a));
  engine.run();
  return {engine.now(), engine.run_digest(), engine.events_processed()};
}

TEST(Prof, DetachedAndAttachedRunsAreByteIdentical) {
  const Fingerprint detached = run_workload(nullptr);
  Profiler profiler;
  const Fingerprint attached = run_workload(&profiler);
  EXPECT_EQ(detached.finished, attached.finished);
  EXPECT_EQ(detached.events, attached.events);
  EXPECT_EQ(detached.digest, attached.digest)
      << "an attached profiler must observe, never perturb";
}

TEST(Prof, SamplingStrideNeverPerturbsSimulatedResults) {
  const Fingerprint baseline = run_workload(nullptr);
  for (std::uint32_t stride : {1u, 7u, 64u, 1024u}) {
    Profiler profiler(Profiler::Config{.sample_stride = stride});
    const Fingerprint fp = run_workload(&profiler);
    EXPECT_EQ(baseline.digest, fp.digest) << "stride " << stride;
    EXPECT_EQ(baseline.finished, fp.finished) << "stride " << stride;
  }
}

TEST(Prof, CountersPopulateAndConserve) {
  Profiler profiler(Profiler::Config{.sample_stride = 1});
  const Fingerprint fp = run_workload(&profiler);
  EXPECT_GT(profiler.posts(), 0u);
  // Every posted event was eventually dispatched; no policy, no requeues.
  EXPECT_EQ(profiler.pops(), profiler.posts() + profiler.requeues());
  EXPECT_EQ(profiler.requeues(), 0u);
  EXPECT_GT(profiler.peak_depth(), 0u);
  EXPECT_GT(profiler.heapify_cost(), 0u);
  // Stride 1: every dispatch sampled.
  EXPECT_EQ(profiler.sampled_dispatches(), fp.events);
  EXPECT_EQ(profiler.events_dispatched(), fp.events);
  EXPECT_GT(profiler.run_host_ns(), 0u);
  EXPECT_GT(profiler.events_per_sec(), 0.0);
}

TEST(Prof, PerScopeAttributionSeesThePostedScopes) {
  Profiler profiler(Profiler::Config{.sample_stride = 1});
  run_workload(&profiler);
  // The raw posts use scopes 0..3; coroutine resumes post at scope -1.
  ASSERT_FALSE(profiler.by_scope().empty());
  EXPECT_TRUE(profiler.by_scope().count(-1));
  EXPECT_TRUE(profiler.by_scope().count(0));
  EXPECT_TRUE(profiler.by_scope().count(3));
  std::uint64_t samples = 0;
  for (const auto& [scope, tally] : profiler.by_scope()) samples += tally.first;
  EXPECT_EQ(samples, profiler.sampled_dispatches());
}

TEST(Prof, PublishExportsProfTaxonomy) {
  Profiler profiler(Profiler::Config{.sample_stride = 4});
  run_workload(&profiler);
  MetricRegistry registry;
  profiler.publish(registry);
  EXPECT_EQ(registry.counter_value("prof.queue.posts"), profiler.posts());
  EXPECT_EQ(registry.counter_value("prof.queue.pops"), profiler.pops());
  EXPECT_EQ(registry.counter_value("prof.queue.peak_depth"), profiler.peak_depth());
  EXPECT_EQ(registry.counter_value("prof.queue.heapify_cost"), profiler.heapify_cost());
  EXPECT_EQ(registry.counter_value("prof.dispatch.stride"), 4u);
  EXPECT_EQ(registry.counter_value("prof.dispatch.sampled"), profiler.sampled_dispatches());
  EXPECT_EQ(registry.counter_value("prof.host.events"), profiler.events_dispatched());
  EXPECT_TRUE(registry.has_counter("prof.dispatch.shared.ns"));
  EXPECT_TRUE(registry.has_counter("prof.dispatch.node0.samples"));
  EXPECT_TRUE(registry.has_counter("prof.alloc.allocs"));
  EXPECT_GE(registry.gauge_max("prof.host.events_per_sec"), 0.0);
}

TEST(Prof, PeakDepthMatchesKnownBacklog) {
  Profiler profiler;
  Engine engine;
  engine.set_profiler(&profiler);
  for (int i = 0; i < 100; ++i) engine.post(us(static_cast<double>(i + 1)), [] {});
  EXPECT_EQ(profiler.peak_depth(), 100u);
  engine.run();
  EXPECT_EQ(profiler.pops(), 100u);
}

TEST(Prof, SliceRetentionIsBoundedByConfig) {
  Profiler profiler(Profiler::Config{.sample_stride = 1, .max_slices = 8});
  run_workload(&profiler);
  EXPECT_EQ(profiler.slices().size(), 8u);
  EXPECT_GT(profiler.slices_dropped(), 0u);
  // The aggregates keep counting past the slice cap.
  EXPECT_EQ(profiler.sampled_dispatches(), profiler.slices().size() + profiler.slices_dropped());
}

TEST(Prof, PolicyRequeuesAreAccounted) {
  // With a policy attached, materializing a co-enabled set pops every
  // same-time event and requeues the not-chosen ones: pops must equal
  // posts + requeues once the queue drains.
  Profiler profiler;
  InsertionOrderPolicy policy;
  Engine engine;
  engine.set_profiler(&profiler);
  engine.set_schedule_policy(&policy);
  int ran = 0;
  for (int i = 0; i < 4; ++i) engine.post(us(1), /*scope=*/i, [&ran] { ++ran; });
  engine.run();
  EXPECT_EQ(ran, 4);
  EXPECT_GT(profiler.requeues(), 0u);
  EXPECT_EQ(profiler.pops(), profiler.posts() + profiler.requeues());
}

TEST(Prof, CountingAllocatorTalliesOnlyWhileTracking) {
  ASSERT_FALSE(prof::alloc_tracking_enabled()) << "seam must start disarmed";
  const prof::AllocStats before = prof::alloc_stats();
  {
    std::vector<int, prof::CountingAllocator<int>> untracked;
    untracked.resize(1024);
  }
  EXPECT_EQ(prof::alloc_stats().allocs, before.allocs) << "tracking off: no tally";

  prof::acquire_alloc_tracking();
  {
    std::vector<int, prof::CountingAllocator<int>> tracked;
    tracked.resize(1024);
  }
  prof::release_alloc_tracking();
  const prof::AllocStats after = prof::alloc_stats();
  EXPECT_GT(after.allocs, before.allocs);
  EXPECT_GE(after.bytes_allocated - before.bytes_allocated, 1024 * sizeof(int));
  EXPECT_EQ(after.allocs - before.allocs, after.frees - before.frees)
      << "vector destruction returns every tracked allocation";
}

TEST(Prof, AllocDeltaCountsOnlyTheAttachWindows) {
  // Churn before attach must not appear in the profiler's delta.
  {
    Engine warmup;
    for (int i = 0; i < 1000; ++i) warmup.post(us(static_cast<double>(i)), [] {});
    warmup.run();
  }
  Profiler profiler;
  {
    Engine engine;
    engine.set_profiler(&profiler);
    for (int i = 0; i < 1000; ++i) engine.post(us(static_cast<double>(i)), [] {});
    engine.run();
  }  // engine death detaches; the window's tally is folded and kept
  const prof::AllocStats delta = profiler.alloc_delta();
  EXPECT_GT(delta.allocs, 0u) << "queue growth for 1000 posted events must be visible";
  EXPECT_GT(delta.bytes_allocated, 0u);
  EXPECT_FALSE(prof::alloc_tracking_enabled()) << "engine death must disarm the seam";

  // A second attach window accumulates on top instead of rebaselining.
  {
    Engine engine;
    engine.set_profiler(&profiler);
    for (int i = 0; i < 1000; ++i) engine.post(us(static_cast<double>(i)), [] {});
    engine.run();
  }
  EXPECT_GE(profiler.alloc_delta().allocs, delta.allocs);
}

TEST(Prof, ChromeTraceHostLanesRoundTripThroughMinijson) {
  Tracer tracer;
  MetricRegistry registry;
  Profiler profiler(Profiler::Config{.sample_stride = 1});
  Engine engine;
  engine.set_tracer(&tracer);
  engine.set_metrics(&registry);
  engine.set_profiler(&profiler);
  for (int i = 0; i < 10; ++i) {
    engine.post(us(static_cast<double>(i)), /*scope=*/i % 2, [&engine, i] {
      engine.trace(TraceCategory::kHost, i % 2, "evt" + std::to_string(i));
      engine.metric_sample("depth", static_cast<double>(i));
    });
  }
  engine.run();
  ASSERT_GT(profiler.slices().size(), 0u);

  const std::string doc = chrome_trace_json(tracer, &registry, &profiler);
  const minijson::Value root = minijson::parse(doc);
  const minijson::Array& events = root.at("traceEvents").as_array();

  std::size_t host_slices = 0;
  bool host_process_named = false;
  bool sim_instants_present = false;
  for (const minijson::Value& event : events) {
    const std::string ph = event.at("ph").as_string();
    if (ph == "M" && event.at("name").as_string() == "process_name" &&
        static_cast<int>(event.at("pid").as_number()) == kHostProfilePid) {
      host_process_named = event.at("args").at("name").as_string() == "host (profiler)";
    }
    if (ph == "X" && event.has("cat") && event.at("cat").as_string() == "prof") {
      ++host_slices;
      EXPECT_GE(event.at("dur").as_number(), 0.0);
      EXPECT_TRUE(event.at("args").has("sim_us"));
      EXPECT_EQ(static_cast<int>(event.at("pid").as_number()), kHostProfilePid);
    }
    if (ph == "i") sim_instants_present = true;
  }
  EXPECT_TRUE(host_process_named);
  EXPECT_TRUE(sim_instants_present) << "sim-time lanes must survive next to the host lanes";
  EXPECT_EQ(host_slices, profiler.slices().size());
}

TEST(Prof, ClusterAttachPublishesProfIntoCollectedMetrics) {
  core::Cluster cluster(2, core::Network::kIwarp);
  Profiler profiler;
  cluster.attach_profiler(profiler);
  cluster.engine().spawn([](Engine& e) -> Task<> {
    for (int i = 0; i < 50; ++i) co_await e.sleep(us(1));
  }(cluster.engine()));
  cluster.engine().run();
  MetricRegistry registry;
  cluster.collect_metrics(registry);
  EXPECT_GT(registry.counter_value("prof.queue.posts"), 0u);
  EXPECT_GT(registry.counter_value("prof.host.events"), 0u);
  EXPECT_GT(registry.counter_value("sim.events"), 0u);
}

TEST(Prof, ResetClearsEverything) {
  Profiler profiler(Profiler::Config{.sample_stride = 1});
  run_workload(&profiler);
  ASSERT_GT(profiler.posts(), 0u);
  profiler.reset();
  EXPECT_EQ(profiler.posts(), 0u);
  EXPECT_EQ(profiler.sampled_dispatches(), 0u);
  EXPECT_EQ(profiler.events_dispatched(), 0u);
  EXPECT_TRUE(profiler.slices().empty());
  EXPECT_EQ(profiler.alloc_delta().allocs, 0u);
}

}  // namespace
}  // namespace fabsim

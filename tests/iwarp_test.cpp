// End-to-end tests of the iWARP stack: RDMA write/read, send/recv,
// segmentation, reliability under loss injection, and protection checks.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "hw/fabric.hpp"
#include "hw/node.hpp"
#include "iwarp/rnic.hpp"
#include "verbs/verbs.hpp"

namespace fabsim::iwarp {
namespace {

hw::SwitchConfig ethernet_switch() {
  return hw::SwitchConfig{Rate::gbit_per_sec(10.0), ns(450), ns(100)};
}

hw::PciConfig pcie_x8() { return hw::PciConfig{Rate::mb_per_sec(2000.0), ns(250)}; }

/// Two nodes, one RNIC each, one connected QP pair.
struct World {
  explicit World(RnicConfig config = {})
      : fabric(engine, ethernet_switch()),
        node0(engine, 0, pcie_x8()),
        node1(engine, 1, pcie_x8()),
        nic0(node0, fabric, config),
        nic1(node1, fabric, config),
        send_cq0(engine),
        recv_cq0(engine),
        send_cq1(engine),
        recv_cq1(engine) {
    qp0 = nic0.create_qp(send_cq0, recv_cq0);
    qp1 = nic1.create_qp(send_cq1, recv_cq1);
    Rnic::connect(*qp0, *qp1);
  }

  Engine engine;
  hw::Switch fabric;
  hw::Node node0, node1;
  Rnic nic0, nic1;
  verbs::CompletionQueue send_cq0, recv_cq0, send_cq1, recv_cq1;
  std::unique_ptr<verbs::QueuePair> qp0, qp1;
};

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 7) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>((i * 131 + seed) & 0xff);
  return v;
}

TEST(IwarpRdmaWrite, PlacesDataAndCompletes) {
  World w;
  auto& src = w.node0.mem().alloc(4096);
  auto& dst = w.node1.mem().alloc(4096);
  const auto payload = pattern(1024);
  std::memcpy(w.node0.mem().window(src.addr(), 1024).data(), payload.data(), 1024);

  Time write_done = 0;
  Time placed_at = 0;
  w.engine.spawn([](World& world, hw::Buffer& s, hw::Buffer& d, Time& done,
                    Time& placed) -> Task<> {
    auto lkey = co_await world.nic0.reg_mr(s.addr(), s.size());
    auto rkey = co_await world.nic1.reg_mr(d.addr(), d.size());
    auto watch = world.nic1.watch_placement(d.addr(), 1024);
    co_await world.qp0->post_send(verbs::SendWr{
        .wr_id = 11, .opcode = verbs::Opcode::kRdmaWrite,
        .sge = {s.addr(), 1024, lkey}, .remote_addr = d.addr(), .rkey = rkey});
    auto completion =
        co_await verbs::next_completion(world.send_cq0, world.node0.cpu(), ns(250));
    EXPECT_EQ(completion.wr_id, 11u);
    EXPECT_EQ(completion.type, verbs::Completion::Type::kRdmaWrite);
    done = world.engine.now();
    co_await watch->wait();
    placed = world.engine.now();
  }(w, src, dst, write_done, placed_at));
  w.engine.run();

  ASSERT_GT(placed_at, 0u);
  EXPECT_LT(write_done, placed_at + us(50));
  // One-way small/medium message latency should be in the ~10 us class.
  EXPECT_GT(placed_at, us(5));
  EXPECT_LT(placed_at, us(40));
  auto view = w.node1.mem().window(dst.addr(), 1024);
  EXPECT_EQ(std::memcmp(view.data(), payload.data(), 1024), 0);
}

TEST(IwarpSendRecv, UntaggedFifoMatching) {
  World w;
  auto& src = w.node0.mem().alloc(8192);
  auto& dst_a = w.node1.mem().alloc(4096);
  auto& dst_b = w.node1.mem().alloc(4096);
  const auto payload = pattern(3000);
  std::memcpy(w.node0.mem().window(src.addr(), 3000).data(), payload.data(), 3000);

  std::vector<std::uint64_t> recv_order;
  w.engine.spawn([](World& world, hw::Buffer& s, hw::Buffer& da, hw::Buffer& db,
                    std::vector<std::uint64_t>& order) -> Task<> {
    auto lkey = co_await world.nic0.reg_mr(s.addr(), s.size());
    auto rkey_a = co_await world.nic1.reg_mr(da.addr(), da.size());
    auto rkey_b = co_await world.nic1.reg_mr(db.addr(), db.size());
    co_await world.qp1->post_recv(verbs::RecvWr{101, {da.addr(), 4096, rkey_a}});
    co_await world.qp1->post_recv(verbs::RecvWr{102, {db.addr(), 4096, rkey_b}});
    co_await world.qp0->post_send(verbs::SendWr{
        .wr_id = 1, .opcode = verbs::Opcode::kSend, .sge = {s.addr(), 3000, lkey}});
    co_await world.qp0->post_send(verbs::SendWr{
        .wr_id = 2, .opcode = verbs::Opcode::kSend, .sge = {s.addr() + 4096, 100, lkey}});
    for (int i = 0; i < 2; ++i) {
      auto completion =
          co_await verbs::next_completion(world.recv_cq1, world.node1.cpu(), ns(250));
      order.push_back(completion.wr_id);
      EXPECT_EQ(completion.type, verbs::Completion::Type::kRecv);
    }
  }(w, src, dst_a, dst_b, recv_order));
  w.engine.run();

  EXPECT_EQ(recv_order, (std::vector<std::uint64_t>{101, 102}));
  auto view = w.node1.mem().window(dst_a.addr(), 3000);
  EXPECT_EQ(std::memcmp(view.data(), payload.data(), 3000), 0);
}

TEST(IwarpRdmaRead, FetchesRemoteData) {
  World w;
  auto& remote = w.node1.mem().alloc(8192);
  auto& sink = w.node0.mem().alloc(8192);
  const auto payload = pattern(6000, 3);
  std::memcpy(w.node1.mem().window(remote.addr(), 6000).data(), payload.data(), 6000);

  w.engine.spawn([](World& world, hw::Buffer& rem, hw::Buffer& snk) -> Task<> {
    auto sink_key = co_await world.nic0.reg_mr(snk.addr(), snk.size());
    auto rkey = co_await world.nic1.reg_mr(rem.addr(), rem.size());
    co_await world.qp0->post_send(verbs::SendWr{
        .wr_id = 77, .opcode = verbs::Opcode::kRdmaRead,
        .sge = {snk.addr(), 6000, sink_key}, .remote_addr = rem.addr(), .rkey = rkey});
    auto completion =
        co_await verbs::next_completion(world.send_cq0, world.node0.cpu(), ns(250));
    EXPECT_EQ(completion.wr_id, 77u);
    EXPECT_EQ(completion.type, verbs::Completion::Type::kRdmaRead);
    EXPECT_EQ(completion.byte_len, 6000u);
  }(w, remote, sink));
  w.engine.run();

  auto view = w.node0.mem().window(sink.addr(), 6000);
  EXPECT_EQ(std::memcmp(view.data(), payload.data(), 6000), 0);
}

TEST(IwarpSegmentation, LargeMessageSegmentCount) {
  World w;
  const std::uint32_t len = 1 << 20;
  auto& src = w.node0.mem().alloc(len, /*with_data=*/false);
  auto& dst = w.node1.mem().alloc(len, /*with_data=*/false);

  w.engine.spawn([](World& world, hw::Buffer& s, hw::Buffer& d, std::uint32_t n) -> Task<> {
    auto lkey = co_await world.nic0.reg_mr(s.addr(), s.size());
    auto rkey = co_await world.nic1.reg_mr(d.addr(), d.size());
    auto watch = world.nic1.watch_placement(d.addr(), n);
    co_await world.qp0->post_send(verbs::SendWr{
        .wr_id = 5, .opcode = verbs::Opcode::kRdmaWrite,
        .sge = {s.addr(), n, lkey}, .remote_addr = d.addr(), .rkey = rkey});
    co_await watch->wait();
  }(w, src, dst, len));
  w.engine.run();

  const auto mss = w.nic0.config().mss;
  const std::uint64_t data_segments = (len + mss - 1) / mss;
  // Sent segments = data segments (acks are counted by the receiver side).
  EXPECT_EQ(w.nic0.segments_sent(), data_segments);
  EXPECT_EQ(w.nic0.retransmits(), 0u);
  // The receiver sent pure acks back.
  EXPECT_GE(w.nic1.segments_sent(), 0u);
}

TEST(IwarpThroughput, OneWayBandwidthIsPcixBound) {
  World w;
  const std::uint32_t len = 4 << 20;
  auto& src = w.node0.mem().alloc(len, false);
  auto& dst = w.node1.mem().alloc(len, false);
  Time done = 0;
  w.engine.spawn([](World& world, hw::Buffer& s, hw::Buffer& d, std::uint32_t n,
                    Time& fin) -> Task<> {
    auto lkey = co_await world.nic0.reg_mr(s.addr(), s.size());
    auto rkey = co_await world.nic1.reg_mr(d.addr(), d.size());
    auto watch = world.nic1.watch_placement(d.addr(), n);
    const Time start = world.engine.now();
    co_await world.qp0->post_send(verbs::SendWr{
        .wr_id = 5, .opcode = verbs::Opcode::kRdmaWrite,
        .sge = {s.addr(), n, lkey}, .remote_addr = d.addr(), .rkey = rkey});
    co_await watch->wait();
    fin = world.engine.now() - start;
  }(w, src, dst, len, done));
  w.engine.run();

  const double mbps = static_cast<double>(len) / to_sec(done) / 1e6;
  // Must be below the 10GbE line rate and in the high-hundreds class.
  EXPECT_LT(mbps, 1250.0);
  EXPECT_GT(mbps, 500.0);
}

TEST(IwarpProtection, BadRkeyThrows) {
  World w;
  auto& src = w.node0.mem().alloc(4096);
  auto& dst = w.node1.mem().alloc(4096);
  w.engine.spawn([](World& world, hw::Buffer& s, hw::Buffer& d) -> Task<> {
    auto lkey = co_await world.nic0.reg_mr(s.addr(), s.size());
    auto rkey = co_await world.nic1.reg_mr(d.addr(), 64);  // too small
    co_await world.qp0->post_send(verbs::SendWr{
        .wr_id = 1, .opcode = verbs::Opcode::kRdmaWrite,
        .sge = {s.addr(), 1024, lkey}, .remote_addr = d.addr(), .rkey = rkey});
  }(w, src, dst));
  EXPECT_THROW(w.engine.run(), std::invalid_argument);
}

TEST(IwarpProtection, MissingRecvThrows) {
  World w;
  auto& src = w.node0.mem().alloc(4096);
  w.engine.spawn([](World& world, hw::Buffer& s) -> Task<> {
    auto lkey = co_await world.nic0.reg_mr(s.addr(), s.size());
    co_await world.qp0->post_send(verbs::SendWr{
        .wr_id = 1, .opcode = verbs::Opcode::kSend, .sge = {s.addr(), 64, lkey}});
  }(w, src));
  EXPECT_THROW(w.engine.run(), std::logic_error);
}

TEST(IwarpProtection, UnregisteredLkeyThrows) {
  World w;
  auto& src = w.node0.mem().alloc(4096);
  EXPECT_THROW(
      {
        w.engine.spawn([](World& world, hw::Buffer& s) -> Task<> {
          co_await world.qp0->post_send(verbs::SendWr{
              .wr_id = 1, .opcode = verbs::Opcode::kSend, .sge = {s.addr(), 64, 999}});
        }(w, src));
        w.engine.run();
      },
      std::invalid_argument);
}

TEST(IwarpReliability, RecoversFromLossWithGoBackN) {
  RnicConfig config;
  config.loss_rate = 0.02;
  config.rto = us(200);
  World w(config);
  const std::uint32_t len = 512 * 1024;
  auto& src = w.node0.mem().alloc(len);
  auto& dst = w.node1.mem().alloc(len);
  const auto payload = pattern(len, 9);
  std::memcpy(w.node0.mem().window(src.addr(), len).data(), payload.data(), len);

  w.engine.spawn([](World& world, hw::Buffer& s, hw::Buffer& d, std::uint32_t n) -> Task<> {
    auto lkey = co_await world.nic0.reg_mr(s.addr(), s.size());
    auto rkey = co_await world.nic1.reg_mr(d.addr(), d.size());
    auto watch = world.nic1.watch_placement(d.addr(), n);
    co_await world.qp0->post_send(verbs::SendWr{
        .wr_id = 5, .opcode = verbs::Opcode::kRdmaWrite,
        .sge = {s.addr(), n, lkey}, .remote_addr = d.addr(), .rkey = rkey});
    co_await watch->wait();
  }(w, src, dst, len));
  w.engine.run();

  EXPECT_GT(w.nic0.retransmits(), 0u) << "loss injection should force retransmission";
  auto view = w.node1.mem().window(dst.addr(), len);
  EXPECT_EQ(std::memcmp(view.data(), payload.data(), len), 0)
      << "go-back-N must deliver the exact byte stream";
}

TEST(IwarpDeterminism, IdenticalRunsProduceIdenticalTimelines) {
  auto run_once = [] {
    World w;
    auto& src = w.node0.mem().alloc(65536, false);
    auto& dst = w.node1.mem().alloc(65536, false);
    Time done = 0;
    w.engine.spawn([](World& world, hw::Buffer& s, hw::Buffer& d, Time& fin) -> Task<> {
      auto lkey = co_await world.nic0.reg_mr(s.addr(), s.size());
      auto rkey = co_await world.nic1.reg_mr(d.addr(), d.size());
      for (int i = 0; i < 5; ++i) {
        auto watch = world.nic1.watch_placement(d.addr(), 65536);
        co_await world.qp0->post_send(verbs::SendWr{
            .wr_id = 5, .opcode = verbs::Opcode::kRdmaWrite,
            .sge = {s.addr(), 65536, lkey}, .remote_addr = d.addr(), .rkey = rkey});
        co_await watch->wait();
      }
      fin = world.engine.now();
    }(w, src, dst, done));
    w.engine.run();
    return std::pair{done, w.engine.events_processed()};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace fabsim::iwarp

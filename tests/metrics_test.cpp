// FabricScope MetricRegistry tests: counter/gauge semantics, phase
// attribution, snapshot naming, engine null-guards, and the taxonomy
// Cluster::collect_metrics() publishes after a real traffic run.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "core/runners.hpp"
#include "sim/histogram.hpp"
#include "sim/metrics.hpp"

namespace fabsim {
namespace {

TEST(MetricRegistry, CounterFindOrCreateAndAccumulate) {
  MetricRegistry r;
  EXPECT_FALSE(r.has_counter("a.b"));
  EXPECT_EQ(r.counter_value("a.b"), 0u) << "missing counter reads as 0";
  r.counter("a.b").add();
  r.counter("a.b").add(9);
  EXPECT_TRUE(r.has_counter("a.b"));
  EXPECT_EQ(r.counter_value("a.b"), 10u);
  Counter& c = r.counter("a.b");
  c.set(3);
  EXPECT_EQ(r.counter_value("a.b"), 3u) << "references alias the stored counter";
}

TEST(MetricRegistry, GaugeTracksHighWaterMark) {
  MetricRegistry r;
  EXPECT_EQ(r.gauge_max("depth"), 0.0);
  r.gauge("depth").set(4.0);
  r.gauge("depth").set(9.0);
  r.gauge("depth").set(2.0);
  EXPECT_EQ(r.gauge("depth").value(), 2.0);
  EXPECT_EQ(r.gauge_max("depth"), 9.0) << "max survives later lower sets";
}

TEST(MetricRegistry, PhaseAttributionPerNodeAndTotal) {
  MetricRegistry r;
  r.charge_phase(Phase::kHost, 0, us(10));
  r.charge_phase(Phase::kHost, 1, us(5));
  r.charge_phase(Phase::kNic, 0, us(7));
  r.charge_phase(Phase::kWire, 0, us(3));
  r.charge_phase(Phase::kWire, 0, us(3));

  EXPECT_EQ(r.phase_time(Phase::kHost), us(15));
  EXPECT_EQ(r.phase_time(Phase::kHost, 0), us(10));
  EXPECT_EQ(r.phase_time(Phase::kHost, 1), us(5));
  EXPECT_EQ(r.phase_time(Phase::kHost, 2), Time{0}) << "uncharged node reads as 0";
  EXPECT_EQ(r.phase_time(Phase::kNic), us(7));
  EXPECT_EQ(r.phase_time(Phase::kWire), us(6)) << "charges accumulate";

  r.reset_phases();
  EXPECT_EQ(r.phase_time(Phase::kHost), Time{0});
  EXPECT_EQ(r.phase_time(Phase::kWire, 0), Time{0});
}

TEST(MetricRegistry, TimestampedSamples) {
  MetricRegistry r;
  r.sample(us(1), "queue_depth", 3.0);
  r.sample(us(2), "queue_depth", 5.0);
  ASSERT_EQ(r.samples().size(), 2u);
  EXPECT_EQ(r.samples()[0].track, "queue_depth");
  EXPECT_EQ(r.samples()[1].at, us(2));
  EXPECT_EQ(r.samples()[1].value, 5.0);
}

TEST(MetricRegistry, SnapshotNamingAndOrder) {
  MetricRegistry r;
  r.counter("z.count").add(4);
  r.counter("a.count").add(1);
  r.gauge("depth").set(6.5);
  r.charge_phase(Phase::kNic, 0, us(12));

  const auto snap = r.snapshot();
  // Sorted flat view: counters verbatim, gauges as "<name>.max", charged
  // phases as "phase.<name>.us"; phases with zero time are omitted.
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].first, "a.count");
  EXPECT_EQ(snap[0].second, 1.0);
  EXPECT_EQ(snap[1].first, "depth.max");
  EXPECT_EQ(snap[1].second, 6.5);
  EXPECT_EQ(snap[2].first, "phase.nic.us");
  EXPECT_DOUBLE_EQ(snap[2].second, 12.0);
  EXPECT_EQ(snap[3].first, "z.count");

  r.clear();
  EXPECT_TRUE(r.snapshot().empty());
  EXPECT_TRUE(r.samples().empty());
}

TEST(MetricRegistry, EngineGuardsWhenDetached) {
  Engine engine;
  EXPECT_EQ(engine.metrics(), nullptr);
  engine.charge_phase(Phase::kHost, 0, us(1));  // must be a no-op, not a crash
  engine.metric_sample("track", 1.0);
}

TEST(MetricRegistry, EngineForwardsWhenAttached) {
  Engine engine;
  MetricRegistry r;
  engine.set_metrics(&r);
  engine.charge_phase(Phase::kWire, 3, us(4));
  engine.metric_sample("util", 0.5);
  EXPECT_EQ(r.phase_time(Phase::kWire, 3), us(4));
  ASSERT_EQ(r.samples().size(), 1u);
  EXPECT_EQ(r.samples()[0].track, "util");
}

// One MPI message over each stack, then assert collect_metrics()
// publishes the documented taxonomy with sane values.
void run_one_message(core::Cluster& cluster, std::uint32_t len) {
  auto& src = cluster.node(0).mem().alloc(len, false);
  auto& dst = cluster.node(1).mem().alloc(len, false);
  cluster.engine().spawn([](core::Cluster& c, std::uint64_t s, std::uint32_t n) -> Task<> {
    co_await c.setup_mpi();
    co_await c.mpi_rank(0).send(1, 1, s, n);
  }(cluster, src.addr(), len));
  cluster.engine().spawn([](core::Cluster& c, std::uint64_t d, std::uint32_t n) -> Task<> {
    co_await c.setup_mpi();
    co_await c.mpi_rank(1).recv(0, 1, d, n);
  }(cluster, dst.addr(), len));
  cluster.engine().run();
}

TEST(ClusterMetrics, IwarpTaxonomyAfterTraffic) {
  core::Cluster cluster(2, core::Network::kIwarp);
  MetricRegistry r;
  cluster.engine().set_metrics(&r);
  run_one_message(cluster, 64 * 1024);
  cluster.collect_metrics(r);

  EXPECT_GT(r.counter_value("iwarp.node0.segments_sent"), 0u);
  EXPECT_GT(r.counter_value("iwarp.node1.acks_sent"), 0u);
  EXPECT_EQ(r.counter_value("iwarp.node0.retransmits"), 0u) << "no loss injected";
  EXPECT_GT(r.counter_value("iwarp.node0.pcix_bytes"), 0u);
  EXPECT_GT(r.counter_value("hw.node0.cpu_busy_us"), 0u);
  EXPECT_GT(r.counter_value("hw.node0.pcie_bytes_read"), 0u);
  EXPECT_TRUE(r.has_counter("switch.port0.tail_drops"));
  // The run must also have charged wall time to the three phases.
  EXPECT_GT(r.phase_time(Phase::kHost), Time{0});
  EXPECT_GT(r.phase_time(Phase::kNic), Time{0});
  EXPECT_GT(r.phase_time(Phase::kWire), Time{0});
}

TEST(ClusterMetrics, IbTaxonomyAfterTraffic) {
  core::Cluster cluster(2, core::Network::kIb);
  MetricRegistry r;
  cluster.engine().set_metrics(&r);
  run_one_message(cluster, 64 * 1024);
  cluster.collect_metrics(r);

  EXPECT_GT(r.counter_value("ib.node0.packets_sent"), 0u);
  // The RC ack/NAK machinery arms only under an active fault injector —
  // on the lossless fabric the counters exist but must stay zero.
  EXPECT_TRUE(r.has_counter("ib.node0.acks_sent"));
  EXPECT_EQ(r.counter_value("ib.node0.acks_sent") + r.counter_value("ib.node1.acks_sent"), 0u);
  EXPECT_EQ(r.counter_value("ib.node0.naks_sent"), 0u);
  EXPECT_GT(r.counter_value("ib.node0.context_hits") +
                r.counter_value("ib.node0.context_misses"),
            0u);
  EXPECT_GT(r.counter_value("mpi.rank0.rndv_sends"), 0u) << "64 KB goes rendezvous";
}

TEST(ClusterMetrics, MxTaxonomyAfterTraffic) {
  core::Cluster cluster(2, core::Network::kMxom);
  MetricRegistry r;
  cluster.engine().set_metrics(&r);
  run_one_message(cluster, 64 * 1024);
  cluster.collect_metrics(r);

  EXPECT_GT(r.counter_value("mx.node0.frames_sent"), 0u);
  EXPECT_GT(r.counter_value("mx.node0.rndv_sends"), 0u);
  EXPECT_EQ(r.counter_value("mx.node0.resends"), 0u);
  EXPECT_GT(r.counter_value("mx.node0.reg_cache_hits") +
                r.counter_value("mx.node0.reg_cache_misses"),
            0u);
}

TEST(ClusterMetrics, RunnerPublishesHistogramAndRegistry) {
  // The runner plumbing end to end: observers passed through a bench
  // runner come back populated.
  Histogram hist;
  MetricRegistry r;
  const double lat = core::mpi_pingpong_latency_us(core::iwarp_profile(), 1024, 10, &hist, &r);
  EXPECT_GT(lat, 0.0);
  EXPECT_GT(hist.count(), 0u);
  EXPECT_GT(hist.p50(), 0.0);
  EXPECT_GE(hist.p99(), hist.p50());
  EXPECT_GT(r.counter_value("iwarp.node0.segments_sent"), 0u);
}

}  // namespace
}  // namespace fabsim

// Accumulator edge cases and Histogram percentile correctness against
// independently computed exact sorted quantiles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/histogram.hpp"
#include "sim/stats.hpp"

namespace fabsim {
namespace {

TEST(Accumulator, EmptyIsAllZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.sum(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_EQ(a.stddev(), 0.0);
  EXPECT_EQ(a.min(), 0.0);
  EXPECT_EQ(a.max(), 0.0);
}

TEST(Accumulator, SingleSample) {
  Accumulator a;
  a.add(42.5);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 42.5);
  EXPECT_DOUBLE_EQ(a.min(), 42.5);
  EXPECT_DOUBLE_EQ(a.max(), 42.5);
  EXPECT_EQ(a.variance(), 0.0) << "sample variance of n=1 must be 0, not NaN";
  EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, NegativeSamples) {
  Accumulator a;
  a.add(-3.0);
  a.add(-1.0);
  a.add(-2.0);
  EXPECT_DOUBLE_EQ(a.mean(), -2.0);
  EXPECT_DOUBLE_EQ(a.min(), -3.0);
  EXPECT_DOUBLE_EQ(a.max(), -1.0);
  EXPECT_DOUBLE_EQ(a.sum(), -6.0);
  EXPECT_DOUBLE_EQ(a.variance(), 1.0);
}

TEST(Accumulator, MatchesNaiveTwoPassMoments) {
  // Welford must agree with the textbook two-pass formulas.
  std::vector<double> xs;
  std::uint64_t state = 12345;
  Accumulator a;
  for (int i = 0; i < 1000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double x = static_cast<double>(state >> 40) / 1024.0;  // [0, ~16M)
    xs.push_back(x);
    a.add(x);
  }
  double sum = 0;
  for (double x : xs) sum += x;
  const double mean = sum / static_cast<double>(xs.size());
  double m2 = 0;
  for (double x : xs) m2 += (x - mean) * (x - mean);
  const double variance = m2 / static_cast<double>(xs.size() - 1);

  EXPECT_EQ(a.count(), xs.size());
  EXPECT_NEAR(a.mean(), mean, std::abs(mean) * 1e-12);
  EXPECT_NEAR(a.variance(), variance, variance * 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(a.max(), *std::max_element(xs.begin(), xs.end()));
}

// Reference nearest-rank quantile on a sorted copy, computed
// independently of the Histogram implementation.
double exact_nearest_rank(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  auto rank =
      static_cast<std::size_t>(std::ceil(p / 100.0 * static_cast<double>(xs.size())));
  if (rank > 0) --rank;
  return xs[rank];
}

TEST(Histogram, EmptyPercentilesAreZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p999(), 0.0);
  EXPECT_TRUE(h.buckets().empty());
}

TEST(Histogram, SingleSampleIsEveryPercentile) {
  Histogram h;
  h.add(7.25);
  for (double p : {0.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 7.25);
  }
}

TEST(Histogram, PercentilesMatchExactSortedQuantiles) {
  // A skewed latency-like distribution: bulk around 10, a long tail.
  Histogram h;
  std::vector<double> xs;
  std::uint64_t state = 987654321;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double u = static_cast<double>(state >> 11) /
                     static_cast<double>(1ull << 53);  // uniform [0,1)
    const double x = 10.0 + 50.0 * u * u * u * u;  // heavy right tail
    xs.push_back(x);
    h.add(x);
  }
  for (double p : {1.0, 25.0, 50.0, 90.0, 99.0, 99.9}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), exact_nearest_rank(xs, p)) << "p=" << p;
  }
  // Interleave more adds after a percentile query: the lazy sort must
  // not lose samples added after the first query.
  h.add(1000.0);
  xs.push_back(1000.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 1000.0);
  EXPECT_DOUBLE_EQ(h.p50(), exact_nearest_rank(xs, 50.0));
}

TEST(Histogram, PercentileClampsOutOfRangeP) {
  Histogram h;
  for (double x : {1.0, 2.0, 3.0}) h.add(x);
  EXPECT_DOUBLE_EQ(h.percentile(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(150.0), 3.0);
}

TEST(Histogram, BucketsCoverAllSamplesOnce) {
  Histogram h;
  // Values straddling bucket edges: [0,1), [1,2), [2,4), [4,8), [8,16).
  for (double x : {0.0, 0.5, 0.999, 1.0, 1.5, 2.0, 3.99, 4.0, 8.0, 15.0}) h.add(x);
  const auto buckets = h.buckets();
  ASSERT_FALSE(buckets.empty());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    total += buckets[i].count;
    EXPECT_LT(buckets[i].lo, buckets[i].hi);
    if (i > 0) {
      EXPECT_LE(buckets[i - 1].hi, buckets[i].lo) << "buckets must not overlap";
    }
  }
  EXPECT_EQ(total, h.count());
  EXPECT_EQ(buckets.front().lo, 0.0);
  EXPECT_EQ(buckets.front().count, 3u) << "[0,1) holds 0.0, 0.5, 0.999";
}

TEST(Histogram, SummaryAndClear) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  const std::string s = h.summary();
  EXPECT_NE(s.find("n=100"), std::string::npos) << s;
  EXPECT_NE(s.find("p50="), std::string::npos) << s;
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p99(), 0.0);
}

}  // namespace
}  // namespace fabsim

#!/usr/bin/env python3
"""Self-tests for the dependency-free analyzers (ctest: lint_selftest).

Runs scripts/conventions_lint.py, scripts/scope_check.py and
scripts/hotpath_check.py against the fixture trees under
tests/lint_fixtures/: the *_clean trees must pass, and the *_dirty
trees must fail with every expected rule tag present — one positive and
one negative case per rule, so a regex that silently stops matching (or
starts over-matching) turns the suite red.
"""
import os
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(ROOT, "tests", "lint_fixtures")

failures = []


def check(name, ok):
    print(("PASS" if ok else "FAIL") + f": {name}")
    if not ok:
        failures.append(name)


def run(script, *args):
    return subprocess.run(
        [sys.executable, os.path.join(ROOT, "scripts", script), *args],
        capture_output=True, text=True)


# --- conventions_lint.py ----------------------------------------------

clean = run("conventions_lint.py", "--root",
            os.path.join(FIXTURES, "conventions_clean"))
check("conventions: clean tree passes", clean.returncode == 0)

dirty = run("conventions_lint.py", "--root",
            os.path.join(FIXTURES, "conventions_dirty"))
check("conventions: dirty tree fails", dirty.returncode != 0)
for rule in ["pragma-once", "include-resolution", "no-wall-clock",
             "no-naked-new", "no-rand", "post-ref-capture",
             "unordered-iteration", "switch-construction",
             "switch-failure-seam", "no-global-state", "no-stdfunction"]:
    check(f"conventions: dirty tree flags [{rule}]", f"[{rule}]" in dirty.stderr)
check("conventions: dirty tree count is exact",
      "11 problem(s)" in dirty.stderr)

# The real tree must be clean too (the gate the fixtures exist to guard).
real = run("conventions_lint.py")
check("conventions: real src/ is clean", real.returncode == 0)

# --- scope_check.py ---------------------------------------------------

clean = run("scope_check.py", "--root",
            os.path.join(FIXTURES, "scope_clean"), "--out", "-")
check("scope: clean tree passes", clean.returncode == 0)
check("scope: clean tree saw the waiver", "1 waived" in clean.stdout)

dirty = run("scope_check.py", "--root",
            os.path.join(FIXTURES, "scope_dirty"), "--out", "-")
check("scope: dirty tree fails", dirty.returncode != 0)
for rule in ["scope_mismatch", "unprovable_capture", "empty_waiver",
             "missing_dynamic_trap"]:
    check(f"scope: dirty tree flags [{rule}]", f"[{rule}]" in dirty.stderr)
check("scope: dirty tree flags the owner mismatch",
      "FABSIM_OWNED_BY(port_)" in dirty.stderr)
check("scope: dirty tree flags the shared capture",
      "FABSIM_SHARED state" in dirty.stderr)

# The real tree: clean by default, and the deliberately mislabeled
# mutation seam must be caught when armed (the gate can fail).
real = run("scope_check.py", "--out", "-")
check("scope: real src/ is clean", real.returncode == 0)
mutation = run("scope_check.py", "--mutation", "--expect-violations", "--out", "-")
check("scope: mutation seam is caught statically", mutation.returncode == 0)
check("scope: mutation verdict names the seam", "fabric.cpp" in mutation.stderr)

# --- hotpath_check.py -------------------------------------------------

clean = run("hotpath_check.py", "--root",
            os.path.join(FIXTURES, "hotpath_clean"), "--out", "-")
check("hotpath: clean tree passes", clean.returncode == 0)
check("hotpath: clean tree saw the waiver", "1 waived" in clean.stdout)
check("hotpath: clean tree stopped at the cold function",
      "1 cold stops" in clean.stdout)

dirty = run("hotpath_check.py", "--root",
            os.path.join(FIXTURES, "hotpath_dirty"), "--out", "-")
check("hotpath: dirty tree fails", dirty.returncode != 0)
for rule in ["hot_alloc", "hot_growth", "hot_stdfunction", "hot_wallclock",
             "hot_io", "hot_throw", "empty_waiver"]:
    check(f"hotpath: dirty tree flags [{rule}]", f"[{rule}]" in dirty.stderr)
check("hotpath: dirty tree scanned the post lambda",
      "<post-lambda>" in dirty.stderr)
check("hotpath: dormant mutation seam is NOT flagged",
      "mutation_hotalloc" not in dirty.stderr)
armed = run("hotpath_check.py", "--root",
            os.path.join(FIXTURES, "hotpath_dirty"), "--mutation", "--out", "-")
check("hotpath: armed mutation seam is flagged",
      "[mutation_hotalloc]" in armed.stderr)

# The real tree: clean by default, and the deliberately allocating
# dispatch seam must be caught when armed (the gate can fail).
real = run("hotpath_check.py", "--out", "-")
check("hotpath: real src/ is clean", real.returncode == 0)
mutation = run("hotpath_check.py", "--mutation", "--expect-violations", "--out", "-")
check("hotpath: mutation seam is caught statically", mutation.returncode == 0)
check("hotpath: mutation verdict names the seam", "engine.hpp" in mutation.stderr)

if failures:
    print(f"lint_test: {len(failures)} failure(s)")
    sys.exit(1)
print("lint_test: all checks passed")

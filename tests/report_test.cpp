// Report writer round-trip: the JSON every bench persists must parse
// back through sim/json.hpp and carry the tables, scalars, histogram
// percentiles and metric dump intact; write() must produce the three
// uniform artifacts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>

#include "core/report.hpp"

namespace fabsim::core {
namespace {

Report sample_report() {
  Report report("unit_report");
  report.add_note("first note with \"quotes\"");
  report.add_note("second note");
  report.add_scalar("latency (paper)", 6.7, "us");
  report.add_scalar("broken", std::numeric_limits<double>::quiet_NaN());

  Table table("latency vs size", "msg_bytes", {"iWARP", "IB"});
  table.add_row(64, {6.7, 4.4});
  table.add_row(1024, {9.1, 5.2});
  table.add_row(0.01, {1.0, 2.0});  // fractional x (loss-rate style)
  report.add_table(table);

  Histogram h;
  for (int i = 1; i <= 200; ++i) h.add(static_cast<double>(i) / 10.0);
  report.add_histogram("iwarp.latency_us", h);
  Histogram empty;
  report.add_histogram("skipped", empty);

  MetricRegistry registry;
  registry.counter("iwarp.node0.retransmits").add(3);
  registry.gauge("mx.node0.posted_depth").set(5.0);
  registry.charge_phase(Phase::kWire, 0, us(42));
  report.add_metrics(registry, "probe.");
  return report;
}

TEST(Report, JsonRoundTripsThroughMinijson) {
  const Report report = sample_report();
  minijson::Value doc = minijson::parse(report.json());  // throws if malformed

  EXPECT_EQ(doc.at("benchmark").as_string(), "unit_report");
  ASSERT_EQ(doc.at("notes").as_array().size(), 2u);
  EXPECT_EQ(doc.at("notes").as_array()[0].as_string(), "first note with \"quotes\"");

  EXPECT_DOUBLE_EQ(doc.at("scalars").at("latency (paper)").as_number(), 6.7);
  EXPECT_TRUE(doc.at("scalars").at("broken").is_null()) << "NaN must become JSON null";

  const auto& tables = doc.at("tables").as_array();
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0].at("title").as_string(), "latency vs size");
  EXPECT_EQ(tables[0].at("series").as_array()[1].as_string(), "IB");
  const auto& rows = tables[0].at("rows").as_array();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_DOUBLE_EQ(rows[1].as_array()[0].as_number(), 1024.0);
  EXPECT_DOUBLE_EQ(rows[1].as_array()[2].as_number(), 5.2);
  EXPECT_DOUBLE_EQ(rows[2].as_array()[0].as_number(), 0.01);

  // The acceptance contract: p50 and p99 present and numeric.
  const auto& hist = doc.at("histograms").at("iwarp.latency_us");
  EXPECT_EQ(hist.at("n").as_number(), 200.0);
  EXPECT_GT(hist.at("p50").as_number(), 0.0);
  EXPECT_GE(hist.at("p99").as_number(), hist.at("p50").as_number());
  EXPECT_GT(hist.at("buckets").as_array().size(), 0u);
  EXPECT_FALSE(doc.at("histograms").has("skipped")) << "empty histograms are dropped";

  EXPECT_DOUBLE_EQ(doc.at("metrics").at("probe.iwarp.node0.retransmits").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(doc.at("metrics").at("probe.mx.node0.posted_depth.max").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(doc.at("metrics").at("probe.phase.wire.us").as_number(), 42.0);
}

TEST(Report, EmptyReportIsStillValidJson) {
  minijson::Value doc = minijson::parse(Report("empty").json());
  EXPECT_TRUE(doc.at("tables").as_array().empty());
  EXPECT_TRUE(doc.at("histograms").as_object().empty());
  EXPECT_TRUE(doc.at("metrics").as_object().empty());
}

TEST(Report, WriteEmitsAllThreeArtifacts) {
  const auto dir = std::filesystem::temp_directory_path() / "fabsim_report_test";
  std::filesystem::remove_all(dir);
  const Report report = sample_report();
  ASSERT_TRUE(report.write(dir.string()));
  for (const char* ext : {".txt", ".csv", ".json"}) {
    const auto path = dir / ("unit_report" + std::string(ext));
    EXPECT_TRUE(std::filesystem::exists(path)) << path;
    EXPECT_GT(std::filesystem::file_size(path), 0u) << path;
  }

  // The .txt must carry the table and the fractional x unmangled.
  std::FILE* f = std::fopen((dir / "unit_report.txt").c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  EXPECT_NE(text.find("latency vs size"), std::string::npos);
  EXPECT_NE(text.find("0.01"), std::string::npos) << "fractional x must not print as 0";
  EXPECT_NE(text.find("## metrics"), std::string::npos);

  // And the persisted JSON parses on its own.
  std::FILE* jf = std::fopen((dir / "unit_report.json").c_str(), "rb");
  ASSERT_NE(jf, nullptr);
  std::string jtext;
  while ((n = std::fread(buf, 1, sizeof(buf), jf)) > 0) jtext.append(buf, n);
  std::fclose(jf);
  EXPECT_NO_THROW(minijson::parse(jtext));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fabsim::core

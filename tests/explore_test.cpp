// FabricExplore tests: the SchedulePolicy seam, the controlled policy's
// record/replay contract, the DFS + reduction, the counterexample
// minimizer, the schedule fuzzer, and — the self-test the subsystem
// exists for — rediscovery of two deliberately re-introduced historical
// bugs behind the ib::HcaConfig mutation flags.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/cluster.hpp"
#include "explore/explorer.hpp"
#include "explore/scenarios.hpp"
#include "sim/engine.hpp"
#include "sim/schedule.hpp"

namespace fabsim {
namespace {

using explore::ControlledPolicy;
using explore::ExploreBudget;
using explore::ExploreResult;
using explore::Explorer;
using explore::Finding;
using explore::FindingKind;
using explore::Mutation;
using explore::RunContext;
using explore::RunOutcome;
using explore::Scenario;
using explore::Schedule;

// ---------------------------------------------------------------------------
// SchedulePolicy seam: attaching the default policy must not perturb
// anything
// ---------------------------------------------------------------------------

/// A little workload with several same-timestamp ties: three waves of
/// scoped events plus an unscoped one per wave.
std::uint64_t run_toy_engine(SchedulePolicy* policy, std::vector<int>* order = nullptr) {
  Engine engine;
  if (policy != nullptr) engine.set_schedule_policy(policy);
  int tag = 0;
  for (int wave = 0; wave < 3; ++wave) {
    for (int node = 0; node < 3; ++node) {
      const int id = tag++;
      engine.post(us(wave + 1), /*scope=*/node, [order, id] {
        if (order != nullptr) order->push_back(id);
      });
    }
    const int id = tag++;
    engine.post(us(wave + 1), [order, id] {  // scope -1: conflicts with all
      if (order != nullptr) order->push_back(id);
    });
  }
  engine.run();
  return engine.run_digest();
}

TEST(ScheduleSeam, InsertionOrderPolicyIsByteIdenticalToNoPolicy) {
  std::vector<int> bare_order, policy_order, controlled_order;
  const std::uint64_t bare = run_toy_engine(nullptr, &bare_order);
  InsertionOrderPolicy insertion;
  const std::uint64_t with_policy = run_toy_engine(&insertion, &policy_order);
  ControlledPolicy controlled;  // empty prefix + default tail = index 0
  const std::uint64_t with_controlled = run_toy_engine(&controlled, &controlled_order);

  EXPECT_EQ(bare, with_policy) << "reifying the default tie-break must not change the digest";
  EXPECT_EQ(bare, with_controlled);
  EXPECT_EQ(bare_order, policy_order);
  EXPECT_EQ(bare_order, controlled_order);
  // Each 4-way wave is re-materialized after every dispatch, so it
  // yields decisions of arity 4, 3, 2 (choose() is skipped at arity 1).
  ASSERT_EQ(controlled.decisions().size(), 9u);
  for (std::size_t i = 0; i < controlled.decisions().size(); ++i) {
    EXPECT_EQ(controlled.decisions()[i].arity, 4u - i % 3) << "decision " << i;
    EXPECT_EQ(controlled.decisions()[i].chosen, 0u);
  }
}

TEST(ScheduleSeam, DefaultPolicyIsByteIdenticalOnAFullClusterRun) {
  // End-to-end version of the same invariant: a real cluster workload
  // (MX eager exchange with a dropped frame) under no policy vs. the
  // reified default.
  auto run = [](SchedulePolicy* policy) {
    core::Cluster cluster(2, core::mxoe_profile());
    if (policy != nullptr) cluster.engine().set_schedule_policy(policy);
    fault::FaultPlan plan;
    plan.nth_frame(1, fault::FaultAction::kDrop);
    cluster.engine().set_fault_injector(&plan);
    const std::uint32_t len = 4096;
    auto& src = cluster.node(0).mem().alloc(len, false);
    auto& dst = cluster.node(1).mem().alloc(len, false);
    cluster.engine().spawn([](core::Cluster& c, std::uint64_t s, std::uint32_t n) -> Task<> {
      auto request = co_await c.endpoint(0).isend(s, n, c.endpoint(1).port(), 7);
      co_await c.endpoint(0).wait(request);
    }(cluster, src.addr(), len));
    cluster.engine().spawn([](core::Cluster& c, std::uint64_t d, std::uint32_t n) -> Task<> {
      auto request = co_await c.endpoint(1).irecv(d, n, 7, ~0ull);
      co_await c.endpoint(1).wait(request);
    }(cluster, dst.addr(), len));
    cluster.engine().run();
    return std::pair{cluster.engine().run_digest(), cluster.engine().events_processed()};
  };
  const auto bare = run(nullptr);
  InsertionOrderPolicy insertion;
  const auto reified = run(&insertion);
  EXPECT_EQ(bare.first, reified.first);
  EXPECT_EQ(bare.second, reified.second);
}

TEST(ScheduleSeam, ControlledPolicyFlagsDivergentPrefix) {
  ControlledPolicy controlled({/*decision 0:*/ 9});  // arity is only 4
  std::vector<int> order;
  run_toy_engine(&controlled, &order);
  EXPECT_TRUE(controlled.diverged()) << "out-of-range prefix entries must be flagged";
  EXPECT_EQ(controlled.decisions().front().chosen, 0u) << "and clamped to the default";
}

TEST(ScheduleSeam, NonDefaultChoiceReordersCoEnabledEvents) {
  std::vector<int> default_order, flipped_order;
  run_toy_engine(nullptr, &default_order);
  ControlledPolicy flip({1});  // run the second-inserted event of wave 1 first
  const std::uint64_t flipped_digest = run_toy_engine(&flip, &flipped_order);
  EXPECT_NE(default_order, flipped_order);
  EXPECT_EQ(flipped_order[0], default_order[1]);
  EXPECT_NE(flipped_digest, run_toy_engine(nullptr)) << "the digest must witness the reorder";
}

// ---------------------------------------------------------------------------
// Explorer on toy scenarios: bug finding, record/replay, minimization,
// reduction, fuzz determinism
// ---------------------------------------------------------------------------

/// A schedule-dependent bug: at t=2us two *conflicting* (unscoped)
/// events race, and only the non-default order trips the expectation.
/// The t=1us and t=3us waves are benign padding so the minimizer has
/// something to shrink.
Scenario racy_toy() {
  return Scenario{"racy_toy", [](RunContext& ctx) {
    Engine engine;
    ctx.arm(engine);
    auto writer_ran = std::make_shared<bool>(false);
    auto reader_saw_gap = std::make_shared<bool>(false);
    for (int node = 0; node < 2; ++node) engine.post(us(1), node, [] {});
    engine.post(us(2), [writer_ran] { *writer_ran = true; });
    engine.post(us(2), [writer_ran, reader_saw_gap] {
      if (!*writer_ran) *reader_saw_gap = true;  // reader overtook the writer
    });
    for (int node = 0; node < 2; ++node) engine.post(us(3), node, [] {});
    engine.run();
    ctx.expect(!*reader_saw_gap, "reader must never observe the pre-write state");
    ctx.finish(engine);
  }};
}

/// Fully commuting ties only (distinct scopes, no shared state): clean
/// under every schedule, and every alternative is prunable.
Scenario commuting_toy() {
  return Scenario{"commuting_toy", [](RunContext& ctx) {
    Engine engine;
    ctx.arm(engine);
    for (int wave = 1; wave <= 3; ++wave) {
      for (int node = 0; node < 3; ++node) engine.post(us(wave), node, [] {});
    }
    engine.run();
    ctx.finish(engine);
  }};
}

TEST(Explorer, FindsScheduleDependentBugAndMinimizesIt) {
  ExploreBudget budget;
  budget.max_runs = 64;
  Explorer explorer(racy_toy(), budget);
  const ExploreResult result = explorer.explore();

  ASSERT_EQ(result.findings.size(), 1u);
  const Finding& finding = result.findings.front();
  EXPECT_EQ(finding.kind, FindingKind::kExpectation);
  EXPECT_EQ(finding.rule, "scenario_expectation");
  EXPECT_TRUE(finding.replay_confirmed);
  // Decision 0 is the benign t=1 wave, decision 1 the racing pair: the
  // minimized counterexample is exactly "default, then flip".
  EXPECT_EQ(finding.schedule.choices, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_LE(finding.schedule.choices.size(), finding.original_choices + 1);
}

TEST(Explorer, RecordedScheduleReplaysToIdenticalRun) {
  Explorer explorer(racy_toy(), ExploreBudget{});
  const RunOutcome base = explorer.run_schedule({});
  ASSERT_FALSE(base.failed) << "default order runs writer before reader";
  const RunOutcome again = explorer.run_schedule(base.choices);
  EXPECT_EQ(base.digest, again.digest);
  EXPECT_EQ(base.events, again.events);
  EXPECT_EQ(base.choices, again.choices);
  EXPECT_FALSE(again.diverged);
}

TEST(Explorer, CounterexampleArtifactRoundTripsThroughJsonAndReplays) {
  ExploreBudget budget;
  budget.max_runs = 64;
  Explorer explorer(racy_toy(), budget);
  const ExploreResult result = explorer.explore();
  ASSERT_FALSE(result.findings.empty());
  const Schedule& schedule = result.findings.front().schedule;

  const Schedule parsed = Schedule::from_json(schedule.to_json());
  EXPECT_EQ(parsed.scenario, schedule.scenario);
  EXPECT_EQ(parsed.kind, schedule.kind);
  EXPECT_EQ(parsed.rule, schedule.rule);
  EXPECT_EQ(parsed.digest, schedule.digest);
  EXPECT_EQ(parsed.events, schedule.events);
  EXPECT_EQ(parsed.choices, schedule.choices);
  EXPECT_EQ(parsed.arities, schedule.arities);

  const RunOutcome replayed = Explorer::replay(racy_toy(), parsed);
  EXPECT_TRUE(replayed.failed);
  EXPECT_EQ(replayed.kind, FindingKind::kExpectation);
  EXPECT_EQ(replayed.digest, parsed.digest) << "replay must be bit-for-bit";
}

TEST(Explorer, ReductionPrunesCommutingAlternativesAndStaysClean) {
  ExploreBudget with_reduction;
  with_reduction.max_runs = 256;
  Explorer reduced(commuting_toy(), with_reduction);
  const ExploreResult r1 = reduced.explore();
  EXPECT_TRUE(r1.clean());
  EXPECT_TRUE(r1.stats.frontier_exhausted);
  EXPECT_GT(r1.stats.pruned, 0u) << "every non-default order of disjoint-node events is redundant";

  ExploreBudget without = with_reduction;
  without.reduction = false;
  Explorer full(commuting_toy(), without);
  const ExploreResult r2 = full.explore();
  EXPECT_TRUE(r2.clean());
  EXPECT_EQ(r2.stats.pruned, 0u);
  EXPECT_GT(r2.stats.enqueued, r1.stats.enqueued)
      << "disabling the reduction must strictly enlarge the explored set";
}

TEST(Explorer, ReductionDoesNotPruneConflictingEvents) {
  // The racy pair is unscoped (-1): the reduction must keep both orders,
  // so the bug is found even with reduction enabled (it is, above) and
  // the pruned counter never counts a conflicting pair. Here: force a
  // run where the only ties are conflicting and check nothing is pruned.
  Scenario conflicting{"conflicting_toy", [](RunContext& ctx) {
    Engine engine;
    ctx.arm(engine);
    engine.post(us(1), [] {});
    engine.post(us(1), [] {});
    engine.run();
    ctx.finish(engine);
  }};
  ExploreBudget budget;
  budget.max_runs = 16;
  Explorer explorer(std::move(conflicting), budget);
  const ExploreResult result = explorer.explore();
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(result.stats.pruned, 0u);
  EXPECT_EQ(result.stats.enqueued, 1u) << "the one alternative order must be explored";
}

TEST(Explorer, FuzzerIsDeterministicUnderAFixedSeed) {
  Explorer explorer(commuting_toy(), ExploreBudget{});
  const RunOutcome a = explorer.run_schedule({}, ControlledPolicy::Tail::kRandom, 1234);
  const RunOutcome b = explorer.run_schedule({}, ControlledPolicy::Tail::kRandom, 1234);
  EXPECT_EQ(a.choices, b.choices);
  EXPECT_EQ(a.digest, b.digest);

  // A different seed must be able to pick a different walk (9 three-way
  // ties: the chance of a collision is negligible, and determinism above
  // is what the test pins).
  const RunOutcome c = explorer.run_schedule({}, ControlledPolicy::Tail::kRandom, 99);
  EXPECT_NE(a.choices, c.choices);

  // A fuzz run is replayable: its recorded trace, replayed as a prefix
  // with the default tail, reproduces the identical run.
  const RunOutcome replay = explorer.run_schedule(a.choices);
  EXPECT_EQ(replay.digest, a.digest);
  EXPECT_EQ(replay.choices, a.choices);
}

TEST(Explorer, DetectsDeadlockAsAFinding) {
  Scenario stuck{"stuck_toy", [](RunContext& ctx) {
    Engine engine;
    ctx.arm(engine);
    // A process that waits on an event nobody ever triggers.
    auto gate = std::make_shared<Event>(engine);
    engine.spawn([](std::shared_ptr<Event> g) -> Task<> { co_await g->wait(); }(gate));
    engine.run();
    ctx.finish(engine);
  }};
  Explorer explorer(std::move(stuck), ExploreBudget{});
  const ExploreResult result = explorer.explore();
  ASSERT_FALSE(result.findings.empty());
  EXPECT_EQ(result.findings.front().kind, FindingKind::kDeadlock);
  EXPECT_EQ(result.findings.front().rule, "lost_wakeup");
}

// ---------------------------------------------------------------------------
// Mutation self-test: the explorer must rediscover both re-introduced
// historical bugs within the default budget
// ---------------------------------------------------------------------------

ExploreBudget mutation_budget() {
  ExploreBudget budget;
  budget.max_runs = 32;  // both bugs bite on the baseline schedule
  budget.fuzz_runs = 0;
  return budget;
}

TEST(MutationSelfTest, RediscoversStrandedReadHangAsDeadlock) {
  Explorer explorer(
      explore::find_scenario("ib_read_response_loss", Mutation::kStrandPendingReads),
      mutation_budget());
  const ExploreResult result = explorer.explore();
  ASSERT_EQ(result.findings.size(), 1u);
  const Finding& finding = result.findings.front();
  EXPECT_EQ(finding.kind, FindingKind::kDeadlock);
  EXPECT_EQ(finding.rule, "lost_wakeup");
  EXPECT_TRUE(finding.replay_confirmed);
  EXPECT_TRUE(finding.schedule.choices.empty())
      << "the hang needs no schedule steering: minimization must shrink to the default";

  const RunOutcome replayed = Explorer::replay(
      explore::find_scenario("ib_read_response_loss", Mutation::kStrandPendingReads),
      finding.schedule);
  EXPECT_TRUE(replayed.failed);
  EXPECT_EQ(replayed.kind, FindingKind::kDeadlock);
  EXPECT_EQ(replayed.digest, finding.schedule.digest);
}

TEST(MutationSelfTest, RediscoversDroppedFinalAckAsExpectationFailure) {
  Explorer explorer(explore::find_scenario("ib_send_loss", Mutation::kDropFinalAck),
                    mutation_budget());
  const ExploreResult result = explorer.explore();
  ASSERT_EQ(result.findings.size(), 1u);
  const Finding& finding = result.findings.front();
  EXPECT_EQ(finding.kind, FindingKind::kExpectation);
  EXPECT_EQ(finding.rule, "scenario_expectation");
  EXPECT_TRUE(finding.replay_confirmed);

  const RunOutcome replayed = Explorer::replay(
      explore::find_scenario("ib_send_loss", Mutation::kDropFinalAck), finding.schedule);
  EXPECT_TRUE(replayed.failed);
  EXPECT_EQ(replayed.kind, FindingKind::kExpectation);
}

TEST(MutationSelfTest, UnmutatedScenariosExploreClean) {
  for (const char* name : {"ib_send_loss", "ib_read_response_loss"}) {
    Explorer explorer(explore::find_scenario(name), mutation_budget());
    const ExploreResult result = explorer.explore();
    EXPECT_TRUE(result.clean()) << name << " must be clean without a mutation armed";
  }
}

TEST(MutationSelfTest, MutationNamesRoundTrip) {
  for (const Mutation m :
       {Mutation::kNone, Mutation::kStrandPendingReads, Mutation::kDropFinalAck}) {
    Mutation parsed = Mutation::kNone;
    ASSERT_TRUE(explore::mutation_from_name(explore::mutation_name(m), parsed));
    EXPECT_EQ(parsed, m);
  }
  Mutation out = Mutation::kNone;
  EXPECT_FALSE(explore::mutation_from_name("bogus", out));
}

}  // namespace
}  // namespace fabsim

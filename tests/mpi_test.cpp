// MiniMPI tests, parameterized over all four networks where the semantics
// must be identical (integrity, matching, ordering), plus channel-specific
// behaviour (pin-down cache, ssend synchronization, queues).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/cluster.hpp"

namespace fabsim::core {
namespace {

using mpi::kAnySource;
using mpi::kAnyTag;

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 29) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>((i * 91 + seed) & 0xff);
  return v;
}

class MpiAllNetworks : public ::testing::TestWithParam<Network> {};

INSTANTIATE_TEST_SUITE_P(Networks, MpiAllNetworks,
                         ::testing::Values(Network::kIwarp, Network::kIb, Network::kMxoe,
                                           Network::kMxom),
                         [](const auto& sweep) { return network_name(sweep.param); });

TEST_P(MpiAllNetworks, EagerRoundTripIntegrity) {
  Cluster cluster(2, GetParam());
  auto& src = cluster.node(0).mem().alloc(4096);
  auto& dst = cluster.node(1).mem().alloc(4096);
  const auto payload = pattern(2000);
  std::memcpy(cluster.node(0).mem().window(src.addr(), 2000).data(), payload.data(), 2000);

  cluster.engine().spawn([](Cluster& c, hw::Buffer& s, hw::Buffer& d) -> Task<> {
    co_await c.setup_mpi();
    auto& r0 = c.mpi_rank(0);
    auto& r1 = c.mpi_rank(1);
    auto rx = co_await r1.irecv(0, 7, d.addr(), 4096);
    co_await r0.send(1, 7, s.addr(), 2000);
    co_await r1.wait(rx);
    EXPECT_EQ(rx->status().source, 0);
    EXPECT_EQ(rx->status().tag, 7);
    EXPECT_EQ(rx->status().length, 2000u);
  }(cluster, src, dst));
  cluster.engine().run();
  EXPECT_EQ(cluster.engine().live_processes(), 0u) << "deadlock";

  auto view = cluster.node(1).mem().window(dst.addr(), 2000);
  EXPECT_EQ(std::memcmp(view.data(), payload.data(), 2000), 0);
}

TEST_P(MpiAllNetworks, RendezvousRoundTripIntegrity) {
  Cluster cluster(2, GetParam());
  const std::uint32_t len = 200 * 1024;
  auto& src = cluster.node(0).mem().alloc(len);
  auto& dst = cluster.node(1).mem().alloc(len);
  const auto payload = pattern(len, 31);
  std::memcpy(cluster.node(0).mem().window(src.addr(), len).data(), payload.data(), len);

  // Rendezvous needs both ranks making progress: one process per rank,
  // exactly as in a real MPI job.
  cluster.engine().spawn([](Cluster& c, hw::Buffer& s, std::uint32_t n) -> Task<> {
    co_await c.setup_mpi();
    co_await c.mpi_rank(0).send(1, 3, s.addr(), n);
  }(cluster, src, len));
  cluster.engine().spawn([](Cluster& c, hw::Buffer& d, std::uint32_t n) -> Task<> {
    co_await c.setup_mpi();
    auto status = co_await c.mpi_rank(1).recv(0, 3, d.addr(), n);
    EXPECT_EQ(status.length, n);
  }(cluster, dst, len));
  cluster.engine().run();
  EXPECT_EQ(cluster.engine().live_processes(), 0u);

  auto view = cluster.node(1).mem().window(dst.addr(), len);
  EXPECT_EQ(std::memcmp(view.data(), payload.data(), len), 0);
}

TEST_P(MpiAllNetworks, UnexpectedThenReceive) {
  Cluster cluster(2, GetParam());
  auto& src = cluster.node(0).mem().alloc(4096, false);
  auto& dst = cluster.node(1).mem().alloc(4096, false);

  cluster.engine().spawn([](Cluster& c, hw::Buffer& s, hw::Buffer& d) -> Task<> {
    co_await c.setup_mpi();
    // Send before any receive is posted.
    co_await c.mpi_rank(0).send(1, 5, s.addr(), 512);
    co_await c.engine().sleep(us(100));
    // Must be queued as unexpected by now. Note: ChVerbs only notices the
    // arrival when rank 1 enters the library (synchronous progress), so
    // the queue may only materialize during the irecv below.
    auto status = co_await c.mpi_rank(1).recv(0, 5, d.addr(), 4096);
    EXPECT_EQ(status.length, 512u);
  }(cluster, src, dst));
  cluster.engine().run();
  EXPECT_EQ(cluster.engine().live_processes(), 0u);
}

TEST_P(MpiAllNetworks, WildcardSourceAndTag) {
  Cluster cluster(2, GetParam());
  auto& src = cluster.node(0).mem().alloc(4096, false);
  auto& dst = cluster.node(1).mem().alloc(4096, false);

  cluster.engine().spawn([](Cluster& c, hw::Buffer& s, hw::Buffer& d) -> Task<> {
    co_await c.setup_mpi();
    auto rx = co_await c.mpi_rank(1).irecv(kAnySource, kAnyTag, d.addr(), 4096);
    co_await c.mpi_rank(0).send(1, 1234, s.addr(), 64);
    co_await c.mpi_rank(1).wait(rx);
    EXPECT_EQ(rx->status().source, 0);
    EXPECT_EQ(rx->status().tag, 1234);
  }(cluster, src, dst));
  cluster.engine().run();
  EXPECT_EQ(cluster.engine().live_processes(), 0u);
}

TEST_P(MpiAllNetworks, MessageOrderingPerSourceAndTag) {
  Cluster cluster(2, GetParam());
  auto& src = cluster.node(0).mem().alloc(8 * 4096);
  auto& dst = cluster.node(1).mem().alloc(8 * 4096);

  cluster.engine().spawn([](Cluster& c, hw::Buffer& s, hw::Buffer& d) -> Task<> {
    co_await c.setup_mpi();
    // Stamp 8 distinct messages.
    for (std::uint32_t i = 0; i < 8; ++i) {
      auto w = c.node(0).mem().window(s.addr() + i * 4096, 4);
      const std::uint32_t stamp = 0xa0 + i;
      std::memcpy(w.data(), &stamp, 4);
      co_await c.mpi_rank(0).send(1, 9, s.addr() + i * 4096, 64);
    }
    for (std::uint32_t i = 0; i < 8; ++i) {
      co_await c.mpi_rank(1).recv(0, 9, d.addr() + i * 4096, 4096);
      auto w = c.node(1).mem().window(d.addr() + i * 4096, 4);
      std::uint32_t stamp = 0;
      std::memcpy(&stamp, w.data(), 4);
      EXPECT_EQ(stamp, 0xa0 + i) << "message " << i << " out of order";
    }
  }(cluster, src, dst));
  cluster.engine().run();
  EXPECT_EQ(cluster.engine().live_processes(), 0u);
}

TEST_P(MpiAllNetworks, SsendCompletesOnlyAfterMatch) {
  Cluster cluster(2, GetParam());
  auto& src = cluster.node(0).mem().alloc(4096, false);
  auto& dst = cluster.node(1).mem().alloc(4096, false);

  cluster.engine().spawn([](Cluster& c, hw::Buffer& s, hw::Buffer& d) -> Task<> {
    co_await c.setup_mpi();
    Time recv_posted_at = 0;
    Time ssend_done_at = 0;
    // Rank 1 posts its receive late.
    c.engine().spawn([](Cluster& cc, hw::Buffer& dd, Time& at) -> Task<> {
      co_await cc.engine().sleep(us(300));
      at = cc.engine().now();
      co_await cc.mpi_rank(1).recv(0, 2, dd.addr(), 4096);
    }(c, d, recv_posted_at));
    co_await c.mpi_rank(0).ssend(1, 2, s.addr(), 256);
    ssend_done_at = c.engine().now();
    EXPECT_GT(ssend_done_at, recv_posted_at)
        << "synchronous send must not complete before the receive is posted";
  }(cluster, src, dst));
  cluster.engine().run();
  EXPECT_EQ(cluster.engine().live_processes(), 0u);
}

TEST_P(MpiAllNetworks, PingPongLatencyInPaperClass) {
  Cluster cluster(2, GetParam());
  auto& b0 = cluster.node(0).mem().alloc(4096, false);
  auto& b1 = cluster.node(1).mem().alloc(4096, false);
  double half_rtt_us = 0;

  cluster.engine().spawn([](Cluster& c, hw::Buffer& x0, hw::Buffer& x1, double& out) -> Task<> {
    co_await c.setup_mpi();
    const int iters = 50;
    c.engine().spawn([](Cluster& cc, hw::Buffer& b, int n) -> Task<> {
      auto& r1 = cc.mpi_rank(1);
      for (int i = 0; i < n; ++i) {
        co_await r1.recv(0, 1, b.addr(), 4096);
        co_await r1.send(0, 1, b.addr(), 1);
      }
    }(c, x1, iters));
    auto& r0 = c.mpi_rank(0);
    // Warmup.
    for (int i = 0; i < 5; ++i) {
      co_await r0.send(1, 1, x0.addr(), 1);
      co_await r0.recv(1, 1, x0.addr(), 4096);
    }
    const double t0 = r0.wtime();
    for (int i = 0; i < 45; ++i) {
      co_await r0.send(1, 1, x0.addr(), 1);
      co_await r0.recv(1, 1, x0.addr(), 4096);
    }
    out = (r0.wtime() - t0) / 45.0 / 2.0 * 1e6;
  }(cluster, b0, b1, half_rtt_us));
  cluster.engine().run();
  EXPECT_EQ(cluster.engine().live_processes(), 0u);

  // Paper (§6.1): ~10.7 iWARP, ~4.8 IB, ~3.3 MXoM, ~3.6 MXoE. Wide bands
  // here; calibration_test pins the exact values.
  switch (GetParam()) {
    case Network::kIwarp:
      EXPECT_GT(half_rtt_us, 6.0);
      EXPECT_LT(half_rtt_us, 16.0);
      break;
    case Network::kIb:
      EXPECT_GT(half_rtt_us, 2.5);
      EXPECT_LT(half_rtt_us, 8.0);
      break;
    case Network::kMxom:
    case Network::kMxoe:
      EXPECT_GT(half_rtt_us, 1.5);
      EXPECT_LT(half_rtt_us, 6.0);
      break;
  }
}

TEST_P(MpiAllNetworks, CollectivesOnFourNodes) {
  Cluster cluster(4, GetParam());
  std::vector<hw::Buffer*> bufs, scratch, gather;
  for (int i = 0; i < 4; ++i) {
    bufs.push_back(&cluster.node(i).mem().alloc(4096));
    scratch.push_back(&cluster.node(i).mem().alloc(4096));
    gather.push_back(&cluster.node(i).mem().alloc(4 * 4096));
  }

  int done_ranks = 0;
  for (int r = 0; r < 4; ++r) {
    cluster.engine().spawn([](Cluster& c, int me, std::vector<hw::Buffer*>& b,
                              std::vector<hw::Buffer*>& sc, std::vector<hw::Buffer*>& g,
                              int& done) -> Task<> {
      co_await c.setup_mpi();
      auto& rank = c.mpi_rank(me);
      co_await rank.barrier();

      // allreduce: every rank contributes rank+1 in 8 doubles.
      {
        auto w = c.node(me).mem().window(b[static_cast<std::size_t>(me)]->addr(),
                                         8 * sizeof(double));
        for (int i = 0; i < 8; ++i) {
          const double v = me + 1;
          std::memcpy(w.data() + i * sizeof(double), &v, sizeof(double));
        }
        co_await rank.allreduce_sum(b[static_cast<std::size_t>(me)]->addr(),
                                    sc[static_cast<std::size_t>(me)]->addr(), 8);
        double out = 0;
        std::memcpy(&out, w.data(), sizeof(double));
        EXPECT_DOUBLE_EQ(out, 1 + 2 + 3 + 4);
      }

      // bcast from rank 2.
      {
        auto w = c.node(me).mem().window(sc[static_cast<std::size_t>(me)]->addr(), 8);
        std::memset(w.data(), me == 2 ? 0x5a : 0, 8);
        co_await rank.bcast(2, sc[static_cast<std::size_t>(me)]->addr(), 8);
        EXPECT_EQ(std::to_integer<int>(w[0]), 0x5a);
      }

      // allgather of 512-byte blocks.
      {
        auto w = c.node(me).mem().window(b[static_cast<std::size_t>(me)]->addr(), 512);
        std::memset(w.data(), 0x10 + me, 512);
        co_await rank.allgather(b[static_cast<std::size_t>(me)]->addr(), 512,
                                g[static_cast<std::size_t>(me)]->addr());
        for (int r2 = 0; r2 < 4; ++r2) {
          auto block = c.node(me).mem().window(
              g[static_cast<std::size_t>(me)]->addr() + static_cast<std::uint64_t>(r2) * 512, 512);
          EXPECT_EQ(std::to_integer<int>(block[0]), 0x10 + r2);
          EXPECT_EQ(std::to_integer<int>(block[511]), 0x10 + r2);
        }
      }
      ++done;
    }(cluster, r, bufs, scratch, gather, done_ranks));
  }
  cluster.engine().run();
  EXPECT_EQ(done_ranks, 4);
  EXPECT_EQ(cluster.engine().live_processes(), 0u) << "collective deadlock";
}

TEST(MpiChVerbs, PinDownCacheHitsOnReuse) {
  Cluster cluster(2, Network::kIb);
  const std::uint32_t len = 64 * 1024;
  auto& src = cluster.node(0).mem().alloc(len, false);
  auto& dst = cluster.node(1).mem().alloc(len, false);

  cluster.engine().spawn([](Cluster& c, hw::Buffer& s, std::uint32_t n) -> Task<> {
    co_await c.setup_mpi();
    for (int i = 0; i < 5; ++i) co_await c.mpi_rank(0).send(1, 1, s.addr(), n);
    auto& ch0 = dynamic_cast<mpi::ChVerbs&>(c.mpi_rank(0).channel());
    EXPECT_EQ(ch0.pin_misses(), 1u);
    EXPECT_EQ(ch0.pin_hits(), 4u);
  }(cluster, src, len));
  cluster.engine().spawn([](Cluster& c, hw::Buffer& d, std::uint32_t n) -> Task<> {
    co_await c.setup_mpi();
    for (int i = 0; i < 5; ++i) co_await c.mpi_rank(1).recv(0, 1, d.addr(), n);
  }(cluster, dst, len));
  cluster.engine().run();
  EXPECT_EQ(cluster.engine().live_processes(), 0u);
}

TEST(MpiChVerbs, CreditFlowSurvivesUnexpectedFlood) {
  // More eager sends than credit batch, receiver absent: credits must
  // recover once the receiver drains, with no deadlock.
  Cluster cluster(2, Network::kIwarp);
  auto& src = cluster.node(0).mem().alloc(4096, false);
  auto& dst = cluster.node(1).mem().alloc(4096, false);
  const int kMessages = 300;

  cluster.engine().spawn([](Cluster& c, hw::Buffer& s, hw::Buffer& d, int n) -> Task<> {
    co_await c.setup_mpi();
    for (int i = 0; i < n; ++i) {
      co_await c.mpi_rank(0).send(1, 4, s.addr(), 32);
    }
    for (int i = 0; i < n; ++i) {
      co_await c.mpi_rank(1).recv(0, 4, d.addr(), 4096);
    }
    // Drain trailing completions so credit state settles.
    co_await c.engine().sleep(ms(1));
    auto done = co_await c.mpi_rank(0).isend(1, 4, s.addr(), 32);
    auto rx = co_await c.mpi_rank(1).irecv(0, 4, d.addr(), 4096);
    co_await c.mpi_rank(1).wait(rx);
    co_await c.mpi_rank(0).wait(done);
  }(cluster, src, dst, kMessages));
  cluster.engine().run();
  EXPECT_EQ(cluster.engine().live_processes(), 0u);
}

TEST(MpiDeterminism, FourNetworksRepeatable) {
  for (Network network : {Network::kIwarp, Network::kIb, Network::kMxoe, Network::kMxom}) {
    auto run_once = [network] {
      Cluster cluster(2, network);
      auto& src = cluster.node(0).mem().alloc(1 << 20, false);
      auto& dst = cluster.node(1).mem().alloc(1 << 20, false);
      cluster.engine().spawn([](Cluster& c, hw::Buffer& s, hw::Buffer& d) -> Task<> {
        co_await c.setup_mpi();
        for (std::uint32_t len : {64u, 4096u, 65536u, 1048576u}) {
          auto rx = co_await c.mpi_rank(1).irecv(0, 1, d.addr(), 1 << 20);
          co_await c.mpi_rank(0).send(1, 1, s.addr(), len);
          co_await c.mpi_rank(1).wait(rx);
        }
      }(cluster, src, dst));
      cluster.engine().run();
      return std::pair{cluster.engine().now(), cluster.engine().events_processed()};
    };
    EXPECT_EQ(run_once(), run_once()) << network_name(network);
  }
}

}  // namespace
}  // namespace fabsim::core

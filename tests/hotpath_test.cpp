// FabricHot-Check, dynamic half (src/sim/hot.hpp + sim/inplace_fn.hpp):
// InplaceFn move/destroy semantics and the compile-time over-size
// rejection, the HotpathAuditor's per-dispatch allocation budget with
// amortized queue growth excused, the detached/attached digest-
// transparency pin, and the mutation self-test — the deliberately
// allocating FABSIM_MUTATION_HOTALLOC seam in Engine::dispatch must be
// trapped by the auditor on live events, proving the runtime gate can
// actually fail. scripts/hotpath_check.py --mutation proves the same
// for the static half.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "check/invariant.hpp"
#include "sim/engine.hpp"
#include "sim/hot.hpp"
#include "sim/inplace_fn.hpp"
#include "sim/prof.hpp"

namespace fabsim {
namespace {

// --- InplaceFn semantics ----------------------------------------------

TEST(InplaceFn, InvokesAndReportsEngagement) {
  sim::EventFn empty;
  EXPECT_FALSE(static_cast<bool>(empty));

  int hits = 0;
  sim::EventFn fn([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceFn, MoveTransfersTheCallableAndEmptiesTheSource) {
  int hits = 0;
  sim::EventFn a([&hits] { ++hits; });
  sim::EventFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move): probing moved-from state
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  sim::EventFn c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move): probing moved-from state
  ASSERT_TRUE(static_cast<bool>(c));
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceFn, DestroysTheCaptureExactlyOnce) {
  auto token = std::make_shared<int>(7);
  EXPECT_EQ(token.use_count(), 1);
  {
    sim::EventFn holder([token] { (void)*token; });
    EXPECT_EQ(token.use_count(), 2);
    sim::EventFn moved(std::move(holder));
    EXPECT_EQ(token.use_count(), 2) << "relocation must not duplicate the capture";
    // Move-assign over an engaged target destroys the old capture.
    auto other = std::make_shared<int>(9);
    sim::EventFn target([other] { (void)*other; });
    EXPECT_EQ(other.use_count(), 2);
    target = std::move(moved);
    EXPECT_EQ(other.use_count(), 1) << "assigned-over capture must be destroyed";
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1) << "scope exit must destroy the capture";
}

TEST(InplaceFn, OversizeCallablesAreRejectedAtCompileTime) {
  // A capture that fits is constructible; one byte past the inline
  // capacity is not — the deleted constructor turns a silently
  // heap-spilling std::function into a build error at the post site.
  struct Fits {
    unsigned char payload[sim::kEventFnCapacity];
    void operator()() const {}
  };
  struct Oversize {
    unsigned char payload[sim::kEventFnCapacity + 1];
    void operator()() const {}
  };
  static_assert(std::is_constructible_v<sim::EventFn, Fits>);
  static_assert(!std::is_constructible_v<sim::EventFn, Oversize>);
  EXPECT_TRUE((std::is_constructible_v<sim::EventFn, Fits>));
  EXPECT_FALSE((std::is_constructible_v<sim::EventFn, Oversize>));
}

// --- HotpathAuditor unit semantics ------------------------------------

TEST(HotpathAuditor, TrapsTrackedAllocationInsideAnEventBracket) {
  check::InvariantMonitor monitor(/*fatal=*/false);
  hot::HotpathAuditor auditor(&monitor);
  auditor.on_attach();

  // Allocation outside any event bracket (setup code) is not audited.
  {
    std::vector<int, prof::CountingAllocator<int>> setup;
    setup.resize(64);
  }
  EXPECT_EQ(auditor.violations(), 0u);

  auditor.begin_event(us(1));
  {
    std::vector<int, prof::CountingAllocator<int>> inside;
    inside.resize(64);
  }
  auditor.end_event();
  EXPECT_EQ(auditor.checks(), 1u);
  EXPECT_EQ(auditor.violations(), 1u);
  EXPECT_EQ(monitor.violation_count(), 1u);
  EXPECT_EQ(monitor.violations().front().rule, "hot_alloc_budget");

  auditor.on_detach();
}

TEST(HotpathAuditor, ExcusedGrowthStaysWithinBudget) {
  check::InvariantMonitor monitor(/*fatal=*/false);
  hot::HotpathAuditor auditor(&monitor);
  auditor.on_attach();

  auditor.begin_event(us(1));
  {
    std::vector<int, prof::CountingAllocator<int>> growth;
    growth.reserve(16);  // exactly one tracked allocation
    auditor.excuse_growth(1);
  }
  auditor.end_event();
  EXPECT_EQ(auditor.checks(), 1u);
  EXPECT_EQ(auditor.violations(), 0u) << "excused growth must not trip the budget";

  auditor.on_detach();
}

TEST(HotpathAuditor, ThrowsWithoutMonitorAndIsInertWhenDetached) {
  hot::HotpathAuditor auditor;  // no monitor: violations are fatal
  auditor.on_attach();
  auditor.begin_event(us(1));
  auto trip = [] {
    std::vector<int, prof::CountingAllocator<int>> v;
    v.resize(8);
  };
  trip();
  EXPECT_THROW(auditor.end_event(), check::InvariantViolationError);
  auditor.on_detach();

  // Detached (seam disarmed): the same churn tallies nothing.
  EXPECT_FALSE(prof::alloc_tracking_enabled());
  auditor.begin_event(us(2));
  trip();
  EXPECT_NO_THROW(auditor.end_event());
}

// --- Engine integration ------------------------------------------------

struct ChainRun {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::uint64_t checks = 0;
  std::uint64_t violations = 0;
};

// Chained posts from inside callbacks: the queue grows *during*
// dispatch, so the amortized-growth excusal is exercised on the real
// hot path, not just in the unit test above.
ChainRun run_chain(bool attach_auditor, bool arm_mutation) {
  Engine engine;
  check::InvariantMonitor monitor(/*fatal=*/false);
  hot::HotpathAuditor auditor(&monitor);
  if (attach_auditor) engine.set_hotpath_auditor(&auditor);
  engine.set_mutation_hotalloc(arm_mutation);

  struct Chain {
    Engine* engine;
    int remaining;
    void fire() {
      if (remaining-- <= 0) return;
      // Two children per firing: the queue depth ramps, forcing several
      // backing-store growths mid-dispatch.
      engine->post(engine->now() + us(1), [this] { fire(); });
      engine->post(engine->now() + us(2), [this] { fire(); });
    }
  };
  Chain chain{&engine, 2000};
  engine.post(us(1), [&chain] { chain.fire(); });
  engine.run();

  return ChainRun{engine.run_digest(), engine.events_processed(), auditor.checks(),
                  auditor.violations()};
}

// The auditor is an observer: attaching it must not perturb the
// schedule. Same workload with and without it -> byte-identical digest.
TEST(HotpathAuditor, AttachedAuditorLeavesRunDigestIdentical) {
  const ChainRun plain = run_chain(/*attach_auditor=*/false, /*arm_mutation=*/false);
  const ChainRun audited = run_chain(/*attach_auditor=*/true, /*arm_mutation=*/false);
  EXPECT_EQ(plain.digest, audited.digest);
  EXPECT_EQ(plain.events, audited.events);
  EXPECT_EQ(audited.checks, audited.events) << "every dispatch must be bracketed";
  EXPECT_EQ(audited.violations, 0u)
      << "steady-state dispatch must stay within the zero-allocation budget "
         "(queue growth excused)";
}

// The mutation self-test: arm the deliberately allocating seam in
// Engine::dispatch; the budget auditor must trap every event.
TEST(HotpathAuditor, CatchesArmedHotallocMutation) {
  const ChainRun mutated = run_chain(/*attach_auditor=*/true, /*arm_mutation=*/true);
  EXPECT_GT(mutated.violations, 0u);
  EXPECT_EQ(mutated.violations, mutated.events)
      << "the armed seam allocates on every dispatch";
}

// The acceptance number for ROADMAP item 1: steady-state dispatch is
// zero-allocation as measured by the profiler's per-event tally.
TEST(HotpathProfiler, AllocsPerEventIsZeroInSteadyState) {
  Engine engine;
  Profiler profiler;
  engine.set_profiler(&profiler);
  int ran = 0;
  for (int i = 0; i < 10'000; ++i) {
    engine.post(us(static_cast<double>(i)), [&ran] { ++ran; });
  }
  engine.run();
  EXPECT_EQ(ran, 10'000);
  EXPECT_EQ(profiler.alloc_events(), 10'000u);
  EXPECT_EQ(profiler.allocs_per_event(), 0.0)
      << "dispatch_allocs=" << profiler.dispatch_allocs()
      << " growth=" << profiler.dispatch_growth_allocs();
}

TEST(HotpathProfiler, GrowthDuringDispatchIsAttributedNotCharged) {
  Engine engine;
  Profiler profiler;
  engine.set_profiler(&profiler);
  // Posting from inside callbacks grows the queue mid-dispatch; the
  // growth is visible in the tally but excluded from allocs_per_event.
  struct Chain {
    Engine* engine;
    int remaining;
    void fire() {
      if (remaining-- <= 0) return;
      engine->post(engine->now() + us(1), [this] { fire(); });
      engine->post(engine->now() + us(2), [this] { fire(); });
    }
  };
  Chain chain{&engine, 5000};
  engine.post(us(1), [&chain] { chain.fire(); });
  engine.run();
  EXPECT_GT(profiler.queue_growths(), 0u) << "the ramp must have grown the queue";
  EXPECT_EQ(profiler.allocs_per_event(), 0.0);
  EXPECT_EQ(profiler.dispatch_allocs(), profiler.dispatch_growth_allocs())
      << "the only tracked allocations during dispatch are queue growths";
}

}  // namespace
}  // namespace fabsim

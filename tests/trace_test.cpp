// Tracer tests: capacity, filtering helpers, zero-cost-when-off, and
// event sequences emitted by the stacks.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "sim/trace.hpp"

namespace fabsim {
namespace {

TEST(Tracer, RecordsAndCounts) {
  Tracer tracer;
  tracer.emit(us(1), TraceCategory::kHost, 0, "alpha one");
  tracer.emit(us(2), TraceCategory::kNic, 1, "beta two");
  tracer.emit(us(3), TraceCategory::kProto, 0, "alpha three");
  EXPECT_EQ(tracer.entries().size(), 3u);
  EXPECT_EQ(tracer.count_containing("alpha"), 2u);
  EXPECT_EQ(tracer.count_containing("beta"), 1u);
  EXPECT_EQ(tracer.count_containing("gamma"), 0u);
  tracer.clear();
  EXPECT_TRUE(tracer.entries().empty());
}

TEST(Tracer, CapacityBoundsAndDropCount) {
  Tracer tracer;
  tracer.set_capacity(5);
  for (int i = 0; i < 12; ++i) tracer.emit(us(i), TraceCategory::kWire, 0, "x");
  EXPECT_EQ(tracer.entries().size(), 5u);
  EXPECT_EQ(tracer.dropped(), 7u);
}

TEST(Tracer, KeepLatestRingOverwritesOldest) {
  Tracer tracer;
  tracer.set_capacity(4);
  tracer.set_overflow_mode(Tracer::OverflowMode::kKeepLatest);
  for (int i = 0; i < 10; ++i) {
    tracer.emit(us(i), TraceCategory::kProto, 0, "e" + std::to_string(i));
  }
  EXPECT_EQ(tracer.entries().size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // The ring keeps the tail of the run, in chronological order.
  const auto ordered = tracer.ordered();
  ASSERT_EQ(ordered.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ordered[i].label, "e" + std::to_string(6 + i));
    if (i > 0) {
      EXPECT_GE(ordered[i].at, ordered[i - 1].at);
    }
  }
  EXPECT_NE(tracer.summary().find("oldest events overwritten"), std::string::npos)
      << tracer.summary();
  EXPECT_EQ(tracer.summary().find("INCOMPLETE"), std::string::npos)
      << "keep-latest is deliberate truncation, not an incomplete trace";
  // Default mode keeps the head instead.
  Tracer head;
  head.set_capacity(4);
  for (int i = 0; i < 10; ++i) head.emit(us(i), TraceCategory::kProto, 0, std::to_string(i));
  EXPECT_EQ(head.ordered().front().label, "0");
}

TEST(Tracer, FilteredDumpSelectsCategoryAndNode) {
  Tracer tracer;
  tracer.emit(us(1), TraceCategory::kHost, 0, "host zero");
  tracer.emit(us(2), TraceCategory::kWire, 0, "wire zero");
  tracer.emit(us(3), TraceCategory::kWire, 1, "wire one");

  auto dumped = [&](Tracer::Filter filter) {
    std::FILE* f = std::tmpfile();
    tracer.dump(f, filter);
    std::string out(static_cast<std::size_t>(std::ftell(f)), '\0');
    std::rewind(f);
    const std::size_t got = std::fread(out.data(), 1, out.size(), f);
    out.resize(got);
    std::fclose(f);
    return out;
  };

  std::string wires = dumped({.category = TraceCategory::kWire, .node = {}});
  EXPECT_EQ(wires.find("host zero"), std::string::npos);
  EXPECT_NE(wires.find("wire zero"), std::string::npos);
  EXPECT_NE(wires.find("wire one"), std::string::npos);
  EXPECT_NE(wires.find("(2 of "), std::string::npos) << "filtered dump shows shown/total";

  std::string node1 = dumped({.category = {}, .node = 1});
  EXPECT_EQ(node1.find("wire zero"), std::string::npos);
  EXPECT_NE(node1.find("wire one"), std::string::npos);

  std::string both = dumped({.category = TraceCategory::kWire, .node = 0});
  EXPECT_NE(both.find("wire zero"), std::string::npos);
  EXPECT_EQ(both.find("wire one"), std::string::npos);

  std::string all = dumped({});
  EXPECT_EQ(all.find(" of "), std::string::npos) << "unfiltered dump keeps plain summary";
}

TEST(Tracer, SummarySurfacesDropCount) {
  Tracer tracer;
  tracer.emit(us(1), TraceCategory::kHost, 0, "a");
  tracer.emit(us(2), TraceCategory::kProto, 0, "b");
  EXPECT_NE(tracer.summary().find("2 events"), std::string::npos);
  EXPECT_NE(tracer.summary().find("proto=1"), std::string::npos);
  EXPECT_NE(tracer.summary().find("0 dropped"), std::string::npos);
  EXPECT_EQ(tracer.summary().find("INCOMPLETE"), std::string::npos);

  tracer.set_capacity(2);
  for (int i = 0; i < 3; ++i) tracer.emit(us(i), TraceCategory::kWire, 0, "x");
  EXPECT_NE(tracer.summary().find("3 dropped"), std::string::npos)
      << "a truncated trace must say so: " << tracer.summary();
  EXPECT_NE(tracer.summary().find("INCOMPLETE"), std::string::npos);
}

TEST(Tracer, EngineEmitsNothingWhenDisabled) {
  core::Cluster cluster(2, core::Network::kIwarp);
  auto& src = cluster.node(0).mem().alloc(4096, false);
  auto& dst = cluster.node(1).mem().alloc(4096, false);
  EXPECT_EQ(cluster.engine().tracer(), nullptr);
  cluster.engine().spawn([](core::Cluster& c, std::uint64_t s) -> Task<> {
    co_await c.setup_mpi();
    co_await c.mpi_rank(0).send(1, 1, s, 64);
  }(cluster, src.addr()));
  cluster.engine().spawn([](core::Cluster& c, std::uint64_t d) -> Task<> {
    co_await c.setup_mpi();
    co_await c.mpi_rank(1).recv(0, 1, d, 4096);
  }(cluster, dst.addr()));
  cluster.engine().run();  // must not crash with tracer == nullptr
}

TEST(Tracer, RendezvousEmitsProtocolSequence) {
  core::Cluster cluster(2, core::Network::kIwarp);
  Tracer tracer;
  cluster.engine().set_tracer(&tracer);
  const std::uint32_t len = 32 * 1024;
  auto& src = cluster.node(0).mem().alloc(len, false);
  auto& dst = cluster.node(1).mem().alloc(len, false);

  cluster.engine().spawn([](core::Cluster& c, std::uint64_t s, std::uint32_t n) -> Task<> {
    co_await c.setup_mpi();
    co_await c.mpi_rank(0).send(1, 1, s, n);
  }(cluster, src.addr(), len));
  cluster.engine().spawn([](core::Cluster& c, std::uint64_t d, std::uint32_t n) -> Task<> {
    co_await c.setup_mpi();
    co_await c.mpi_rank(1).recv(0, 1, d, n);
  }(cluster, dst.addr(), len));
  cluster.engine().run();

  EXPECT_EQ(tracer.count_containing("rendezvous RTS"), 1u);
  EXPECT_EQ(tracer.count_containing("rendezvous CTS"), 1u);
  EXPECT_EQ(tracer.count_containing("pin-down cache miss"), 2u) << "both sides pin once";
  EXPECT_GE(tracer.count_containing("TCP segment tagged-write"),
            static_cast<std::size_t>(len / 1408))
      << "the RDMA write's data segments must appear";
  EXPECT_EQ(tracer.count_containing("retransmit"), 0u) << "no loss injected";

  // The protocol order must hold: RTS before CTS before the data.
  std::size_t rts_at = 0, cts_at = 0, first_data = 0;
  for (std::size_t i = 0; i < tracer.entries().size(); ++i) {
    const auto& label = tracer.entries()[i].label;
    if (rts_at == 0 && label.find("rendezvous RTS") != std::string::npos) rts_at = i + 1;
    if (cts_at == 0 && label.find("rendezvous CTS") != std::string::npos) cts_at = i + 1;
    if (first_data == 0 && label.find("TCP segment tagged-write") != std::string::npos) {
      first_data = i + 1;
    }
  }
  EXPECT_LT(rts_at, cts_at);
  EXPECT_LT(cts_at, first_data);
}

TEST(Tracer, LossInjectionEmitsRetransmits) {
  core::NetworkProfile p = core::iwarp_profile();
  p.rnic.loss_rate = 0.05;
  p.rnic.rto = us(200);
  core::Cluster cluster(2, p);
  Tracer tracer;
  cluster.engine().set_tracer(&tracer);
  const std::uint32_t len = 256 * 1024;
  auto& src = cluster.node(0).mem().alloc(len, false);
  auto& dst = cluster.node(1).mem().alloc(len, false);

  cluster.engine().spawn([](core::Cluster& c, std::uint64_t s, std::uint64_t d,
                            std::uint32_t n) -> Task<> {
    verbs::CompletionQueue cq(c.engine());
    auto qp0 = c.device(0).create_qp(cq, cq);
    auto qp1 = c.device(1).create_qp(cq, cq);
    c.device(0).establish(*qp0, *qp1);
    auto lkey = co_await c.device(0).reg_mr(s, n);
    auto rkey = co_await c.device(1).reg_mr(d, n);
    auto watch = c.device(1).watch_placement(d, n);
    co_await qp0->post_send(verbs::SendWr{.wr_id = 1,
                                          .opcode = verbs::Opcode::kRdmaWrite,
                                          .sge = {s, n, lkey},
                                          .remote_addr = d,
                                          .rkey = rkey});
    co_await watch->wait();
  }(cluster, src.addr(), dst.addr(), len));
  cluster.engine().run();

  EXPECT_GT(tracer.count_containing("RTO fired"), 0u);
  EXPECT_GT(tracer.count_containing("retransmit"), 0u);
}

}  // namespace
}  // namespace fabsim

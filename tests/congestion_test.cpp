// Bounded-buffer switch tests: tail drop under incast and the iWARP
// TCP's recovery from congestion loss (as opposed to random loss).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/cluster.hpp"

namespace fabsim::core {
namespace {

TEST(BoundedSwitch, NoDropsWhenBufferIsLargeEnough) {
  NetworkProfile p = iwarp_profile();
  p.switch_cfg.max_queue_bytes = 8ull << 20;
  Cluster cluster(2, p);
  verbs::CompletionQueue cq(cluster.engine());
  auto qp0 = cluster.device(0).create_qp(cq, cq);
  auto qp1 = cluster.device(1).create_qp(cq, cq);
  cluster.device(0).establish(*qp0, *qp1);
  const std::uint32_t len = 1 << 20;
  auto& src = cluster.node(0).mem().alloc(len, false);
  auto& dst = cluster.node(1).mem().alloc(len, false);

  cluster.engine().spawn([](Cluster& c, verbs::QueuePair& qp, std::uint64_t s, std::uint64_t d,
                            std::uint32_t n) -> Task<> {
    auto lkey = co_await c.device(0).reg_mr(s, n);
    auto rkey = co_await c.device(1).reg_mr(d, n);
    auto watch = c.device(1).watch_placement(d, n);
    co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                        .opcode = verbs::Opcode::kRdmaWrite,
                                        .sge = {s, n, lkey},
                                        .remote_addr = d,
                                        .rkey = rkey});
    co_await watch->wait();
  }(cluster, *qp0, src.addr(), dst.addr(), len));
  cluster.engine().run();
  EXPECT_EQ(cluster.fabric().output_drops(cluster.rnic(1).fabric_port()), 0u);
  EXPECT_EQ(cluster.rnic(0).retransmits(), 0u);
}

TEST(BoundedSwitch, IncastOverflowDropsAndTcpRecovers) {
  // Three clients blast one server through a switch with only 48 KB of
  // buffering on the hot port. Ethernet drops; iWARP's TCP must deliver
  // every byte anyway.
  NetworkProfile p = iwarp_profile();
  p.switch_cfg.max_queue_bytes = 48 * 1024;
  p.rnic.rto = us(300);
  Cluster cluster(4, p);

  const std::uint32_t len = 256 * 1024;
  std::vector<std::unique_ptr<verbs::CompletionQueue>> cqs;
  std::vector<std::unique_ptr<verbs::QueuePair>> sqps, cqps;
  std::vector<hw::Buffer*> sbufs, cbufs;
  int done = 0;
  for (int c = 0; c < 3; ++c) {
    cqs.push_back(std::make_unique<verbs::CompletionQueue>(cluster.engine()));
    auto* cq = cqs.back().get();
    sqps.push_back(cluster.device(0).create_qp(*cq, *cq));
    cqps.push_back(cluster.device(c + 1).create_qp(*cq, *cq));
    cluster.device(0).establish(*sqps.back(), *cqps.back());
    sbufs.push_back(&cluster.node(0).mem().alloc(len));
    cbufs.push_back(&cluster.node(c + 1).mem().alloc(len));
  }

  for (int c = 0; c < 3; ++c) {
    cluster.engine().spawn([](Cluster& cl, verbs::QueuePair& qp, hw::Buffer& src,
                              hw::Buffer& dst, int client, std::uint32_t n,
                              int* finished) -> Task<> {
      auto view = cl.node(client + 1).mem().window(src.addr(), n);
      for (std::uint32_t i = 0; i < n; ++i) {
        view[i] = static_cast<std::byte>((i * 7 + static_cast<std::uint32_t>(client)) & 0xff);
      }
      auto lkey = co_await cl.device(client + 1).reg_mr(src.addr(), n);
      auto rkey = co_await cl.device(0).reg_mr(dst.addr(), n);
      auto watch = cl.device(0).watch_placement(dst.addr(), n);
      co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                          .opcode = verbs::Opcode::kRdmaWrite,
                                          .sge = {src.addr(), n, lkey},
                                          .remote_addr = dst.addr(),
                                          .rkey = rkey});
      co_await watch->wait();
      ++*finished;
    }(cluster, *cqps[static_cast<std::size_t>(c)], *cbufs[static_cast<std::size_t>(c)],
      *sbufs[static_cast<std::size_t>(c)], c, len, &done));
  }
  cluster.engine().run();

  EXPECT_EQ(done, 3) << "all transfers must complete despite congestion drops";
  EXPECT_GT(cluster.fabric().output_drops(cluster.rnic(0).fabric_port()), 0u)
      << "the hot port must have overflowed";
  std::uint64_t total_retransmits = 0;
  for (int c = 1; c <= 3; ++c) total_retransmits += cluster.rnic(c).retransmits();
  EXPECT_GT(total_retransmits, 0u);

  // Byte-exact delivery at the server.
  for (int c = 0; c < 3; ++c) {
    auto view = cluster.node(0).mem().window(sbufs[static_cast<std::size_t>(c)]->addr(), len);
    for (std::uint32_t i = 0; i < len; i += 97) {
      ASSERT_EQ(view[i], static_cast<std::byte>((i * 7 + static_cast<std::uint32_t>(c)) & 0xff))
          << "client " << c << " byte " << i;
    }
  }
}

TEST(BoundedSwitch, SmallerBuffersDropMore) {
  auto drops_with = [](std::uint64_t buffer_bytes) {
    NetworkProfile p = iwarp_profile();
    p.switch_cfg.max_queue_bytes = buffer_bytes;
    p.rnic.rto = us(300);
    Cluster cluster(3, p);
    verbs::CompletionQueue cq(cluster.engine());
    std::vector<std::unique_ptr<verbs::QueuePair>> qps;
    const std::uint32_t len = 128 * 1024;
    std::vector<hw::Buffer*> targets;
    for (int c = 0; c < 2; ++c) {
      auto server_qp = cluster.device(0).create_qp(cq, cq);
      auto client_qp = cluster.device(c + 1).create_qp(cq, cq);
      cluster.device(0).establish(*server_qp, *client_qp);
      targets.push_back(&cluster.node(0).mem().alloc(len, false));
      auto& src = cluster.node(c + 1).mem().alloc(len, false);
      cluster.engine().spawn([](Cluster& cl, verbs::QueuePair& qp, std::uint64_t s,
                                std::uint64_t d, int client, std::uint32_t n) -> Task<> {
        auto lkey = co_await cl.device(client + 1).reg_mr(s, n);
        auto rkey = co_await cl.device(0).reg_mr(d, n);
        auto watch = cl.device(0).watch_placement(d, n);
        co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                            .opcode = verbs::Opcode::kRdmaWrite,
                                            .sge = {s, n, lkey},
                                            .remote_addr = d,
                                            .rkey = rkey});
        co_await watch->wait();
      }(cluster, *client_qp, src.addr(), targets.back()->addr(), c, len));
      qps.push_back(std::move(server_qp));
      qps.push_back(std::move(client_qp));
    }
    cluster.engine().run();
    return cluster.fabric().output_drops(cluster.rnic(0).fabric_port());
  };
  const auto small = drops_with(16 * 1024);
  const auto large = drops_with(1 << 20);
  EXPECT_GT(small, large);
  EXPECT_EQ(large, 0u);
}

}  // namespace
}  // namespace fabsim::core

// Communicator (MPI_Comm_split) tests: grouping, key ordering, context
// isolation between sibling communicators, and collectives inside a
// sub-communicator — across all four networks.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/cluster.hpp"

namespace fabsim::core {
namespace {

class CommSplit : public ::testing::TestWithParam<Network> {};

INSTANTIATE_TEST_SUITE_P(Networks, CommSplit,
                         ::testing::Values(Network::kIwarp, Network::kIb, Network::kMxoe,
                                           Network::kMxom),
                         [](const auto& sweep) { return network_name(sweep.param); });

TEST_P(CommSplit, OddEvenGroupsWithReversedKeys) {
  constexpr int kRanks = 4;
  NetworkProfile p = profile(GetParam());
  p.mpi.eager_buffers = 128;
  Cluster cluster(kRanks, p);
  std::vector<hw::Buffer*> scratch;
  for (int r = 0; r < kRanks; ++r) scratch.push_back(&cluster.node(r).mem().alloc(512));

  int checked = 0;
  for (int r = 0; r < kRanks; ++r) {
    cluster.engine().spawn([](Cluster& c, int me, std::vector<hw::Buffer*>& s,
                              int& ok) -> Task<> {
      co_await c.setup_mpi();
      auto& world = c.mpi_rank(me);
      // Odd/even split with key = -world_rank: order inside each group
      // is reversed relative to world order.
      auto comm = co_await world.split(me % 2, /*key=*/-me,
                                       s[static_cast<std::size_t>(me)]->addr());
      EXPECT_EQ(comm->size(), 2);
      // Members sorted by key ascending: higher world rank first.
      const int expected_index = me < 2 ? 1 : 0;
      EXPECT_EQ(comm->rank(), expected_index) << "world rank " << me;
      EXPECT_EQ(comm->world_rank(0), me % 2 + 2);
      EXPECT_EQ(comm->world_rank(1), me % 2);
      ++ok;
    }(cluster, r, scratch, checked));
  }
  cluster.engine().run();
  EXPECT_EQ(checked, kRanks);
  EXPECT_EQ(cluster.engine().live_processes(), 0u);
}

TEST_P(CommSplit, SiblingCommunicatorsAreIsolated) {
  // Both sub-communicators exchange on THE SAME local ranks and tag; the
  // context id must keep the traffic apart.
  constexpr int kRanks = 4;
  NetworkProfile p = profile(GetParam());
  p.mpi.eager_buffers = 128;
  Cluster cluster(kRanks, p);
  std::vector<hw::Buffer*> bufs;
  for (int r = 0; r < kRanks; ++r) bufs.push_back(&cluster.node(r).mem().alloc(1024));

  int checked = 0;
  for (int r = 0; r < kRanks; ++r) {
    cluster.engine().spawn([](Cluster& c, int me, std::vector<hw::Buffer*>& b,
                              int& ok) -> Task<> {
      co_await c.setup_mpi();
      auto& world = c.mpi_rank(me);
      const auto idx = static_cast<std::size_t>(me);
      // Groups {0,1} and {2,3}, world order preserved (key = world rank).
      auto comm = co_await world.split(me / 2, me, b[idx]->addr());
      EXPECT_EQ(comm->size(), 2);
      if (comm->size() != 2) co_return;

      auto w = c.node(me).mem().window(b[idx]->addr() + 256, 8);
      const std::uint64_t token = 0xfeed0000u + static_cast<std::uint64_t>(me);
      std::memcpy(w.data(), &token, 8);

      // Everyone: comm-rank 0 sends to comm-rank 1 and vice versa, SAME
      // tag 5 in both groups simultaneously.
      const int peer = 1 - comm->rank();
      const auto status = co_await comm->sendrecv(peer, 5, b[idx]->addr() + 256, 8, peer, 5,
                                                  b[idx]->addr() + 512, 64);
      EXPECT_EQ(status.source, peer);
      std::uint64_t got = 0;
      std::memcpy(&got, c.node(me).mem().window(b[idx]->addr() + 512, 8).data(), 8);
      const int expected_world_peer = comm->world_rank(peer);
      EXPECT_EQ(got, 0xfeed0000u + static_cast<std::uint64_t>(expected_world_peer))
          << "cross-communicator leakage at world rank " << me;
      ++ok;
    }(cluster, r, bufs, checked));
  }
  cluster.engine().run();
  EXPECT_EQ(checked, kRanks);
  EXPECT_EQ(cluster.engine().live_processes(), 0u);
}

TEST_P(CommSplit, CollectivesInsideSubCommunicator) {
  constexpr int kRanks = 4;
  NetworkProfile p = profile(GetParam());
  p.mpi.eager_buffers = 128;
  Cluster cluster(kRanks, p);
  std::vector<hw::Buffer*> bufs;
  for (int r = 0; r < kRanks; ++r) bufs.push_back(&cluster.node(r).mem().alloc(2048));

  int checked = 0;
  for (int r = 0; r < kRanks; ++r) {
    cluster.engine().spawn([](Cluster& c, int me, std::vector<hw::Buffer*>& b,
                              int& ok) -> Task<> {
      co_await c.setup_mpi();
      auto& world = c.mpi_rank(me);
      const auto idx = static_cast<std::size_t>(me);
      auto comm = co_await world.split(me % 2, me, b[idx]->addr());

      // allreduce of one double inside each sub-communicator: even group
      // sums world ranks {0, 2} = 2; odd group sums {1, 3} = 4.
      auto w = c.node(me).mem().window(b[idx]->addr() + 512, sizeof(double));
      const double mine = me;
      std::memcpy(w.data(), &mine, sizeof(double));
      co_await comm->allreduce_sum(b[idx]->addr() + 512, b[idx]->addr() + 1024, 1);
      double got = 0;
      std::memcpy(&got, w.data(), sizeof(double));
      EXPECT_DOUBLE_EQ(got, me % 2 == 0 ? 2.0 : 4.0);

      // bcast from sub-communicator root.
      auto flag = c.node(me).mem().window(b[idx]->addr() + 1536, 4);
      std::memset(flag.data(), comm->rank() == 0 ? 0x6b : 0, 4);
      co_await comm->bcast(0, b[idx]->addr() + 1536, 4);
      EXPECT_EQ(std::to_integer<int>(flag[0]), 0x6b);

      co_await comm->barrier();
      ++ok;
    }(cluster, r, bufs, checked));
  }
  cluster.engine().run();
  EXPECT_EQ(checked, kRanks);
  EXPECT_EQ(cluster.engine().live_processes(), 0u);
}

TEST(CommSplitDetails, AnyTagRejectedOffWorld) {
  Cluster cluster(2, Network::kIwarp);
  auto& scratch0 = cluster.node(0).mem().alloc(512);
  auto& scratch1 = cluster.node(1).mem().alloc(512);
  bool threw = false;
  cluster.engine().spawn([](Cluster& c, std::uint64_t s, bool* out) -> Task<> {
    co_await c.setup_mpi();
    auto comm = co_await c.mpi_rank(0).split(0, 0, s);
    try {
      (void)co_await comm->irecv(mpi::kAnySource, mpi::kAnyTag, s, 64);
    } catch (const std::invalid_argument&) {
      *out = true;
    }
  }(cluster, scratch0.addr(), &threw));
  cluster.engine().spawn([](Cluster& c, std::uint64_t s) -> Task<> {
    co_await c.setup_mpi();
    auto comm = co_await c.mpi_rank(1).split(0, 0, s);
    (void)comm;
  }(cluster, scratch1.addr()));
  cluster.engine().run();
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace fabsim::core

#pragma once
// hotpath_check self-test fixture: the clean tree. One Engine::dispatch
// root, one FABSIM_HOT leaf, one FABSIM_COLD stop whose body allocates
// (legally: the walk must not scan past the cold marker), one post()
// continuation lambda, and exactly one waived finding with a rationale.

namespace fixdev {

class Pump {
 public:
  FABSIM_HOT void step(int token);
  FABSIM_COLD void rebuild();

 private:
  int credits_ = 0;
  int* table_ = nullptr;
};

class Engine {
 public:
  void dispatch(int ev);

 private:
  Pump pump_;
};

}  // namespace fixdev

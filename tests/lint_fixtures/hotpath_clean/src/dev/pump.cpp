#include "dev/pump.hpp"

namespace fixdev {

FABSIM_HOT void Pump::step(int token) { credits_ += token; }

FABSIM_COLD void Pump::rebuild() {
  // Cold by declaration: build/recovery path, allocation is fine here
  // and the analyzer must not flag it.
  table_ = new int[16];
}

void Engine::dispatch(int ev) {
  pump_.step(ev);
  if (ev == 0) {
    pump_.rebuild();
  }
  queue_.post(1.0, [this] { pump_.step(1); });
  if (ev < 0) {
    // HOT-OK(misuse guard; unreachable in a conforming run)
    throw ev;
  }
}

}  // namespace fixdev

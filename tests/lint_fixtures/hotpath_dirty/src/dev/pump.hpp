#pragma once
// hotpath_check self-test fixture: the dirty tree. Engine::dispatch
// commits one violation per rule (plus one inside a post() lambda and a
// dormant mutation seam for the --mutation polarity case); the
// self-test asserts every tag fires.

namespace fixdev {

class Engine {
 public:
  void dispatch(int ev);

 private:
  char* buf_ = nullptr;
  int ctr_ = 0;
  bool armed_ = true;
};

}  // namespace fixdev

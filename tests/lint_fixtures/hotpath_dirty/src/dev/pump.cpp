#include "dev/pump.hpp"

namespace fixdev {

void Engine::dispatch(int ev) {
  buf_ = new char[64];                          // -> hot_alloc
  log_.push_back(ev);                           // -> hot_growth
  std::function<void(int)> cb;                  // -> hot_stdfunction
  auto t0 = std::chrono::steady_clock::now();   // -> hot_wallclock
  std::cout << ev;                              // -> hot_io
  FABSIM_MUTATION_HOTALLOC(armed_);             // dormant; -> mutation_hotalloc under --mutation
  queue_.post(1.0, [this] { buf_ = new char[8]; });  // -> hot_alloc in the lambda
  if (ev < 0) throw ev;                         // -> hot_throw
  ctr_ += 1;  // HOT-OK()                          -> empty_waiver (no rationale)
}

}  // namespace fixdev

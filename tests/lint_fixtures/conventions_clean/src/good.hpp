// Fixture: the compliant (negative) case for every conventions_lint
// rule. The linter is textual, so this file only needs to *look* like
// project C++ — it is never compiled.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <unordered_map>

namespace fixture {

// Rule 11 negatives: constants are fine at namespace scope...
constexpr int kLimit = 8;
inline const double kScale = 1.5;
// ...and a deliberate mutable global is fine with a written rationale.
inline int sanctioned_global = 0;  // NOLINT(global-state): fixture exemplar

class Good {
 public:
  // Rule 7 negative: the member is unordered, but iteration below goes
  // through the ordered mirror.
  std::unordered_map<int, int> lookup_;
  std::map<int, int> ordered_;

  void tick();

 private:
  std::mt19937 rng_{42};  // rule 5 negative: seeded engine
};

}  // namespace fixture

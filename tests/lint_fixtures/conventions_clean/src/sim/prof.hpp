// Fixture: rule 10 negative — src/sim/prof.hpp is the one sanctioned
// wall-clock consumer, so a steady_clock read here is clean.
#pragma once

#include <chrono>

namespace fixture {

inline long host_now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture

#pragma once
// Rule 12 negative case: sim/hw headers carry callables as
// sim::InplaceFn (or behind a NOLINT with a written rationale), never
// as a bare std::function.

namespace fixsim {

struct Dispatcher {
  sim::InplaceFn<64> on_event;
  std::function<void()> debug_hook;  // NOLINT(no-stdfunction): cold-path debug seam, never dispatched
};

}  // namespace fixsim

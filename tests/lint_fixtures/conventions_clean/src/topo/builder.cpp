// Fixture: rules 8/9 negatives — Switch construction and the failure
// seam are sanctioned inside src/topo/.
#include <memory>

namespace fixture {

void build_and_fail() {
  auto sw = std::make_unique<hw::Switch>(config());
  sw->set_port_down(1);
  sw->set_port_up(1);
}

}  // namespace fixture

// Fixture: compliant call sites for the behavioural rules.
#include "good.hpp"

namespace fixture {

void Good::tick() {
  // Rule 4 negative: allocation through a smart pointer.
  auto owned = std::make_unique<int>(3);
  // Rule 6 negative: explicit capture in a posted lambda.
  int credits = static_cast<int>(rng_());
  engine().post(now(), [this, credits] { lookup_[credits] = *owned; });
  // Rule 7 negative: range-for over the ordered container.
  for (auto& kv : ordered_) {
    kv.second += 1;
  }
}

}  // namespace fixture

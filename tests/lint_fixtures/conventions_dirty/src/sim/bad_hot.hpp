#pragma once
// Rule 12 positive case: a std::function member in a sim/ header must
// be flagged [no-stdfunction].

namespace fixsim {

struct HotDispatcher {
  std::function<void()> on_event;
};

}  // namespace fixsim

// Fixture: behavioural-rule positives, one per rule.
#include <chrono>
#include <cstdlib>

namespace fixture {

void Bad::tick() {
  // Rule 3: host clock in simulation code.
  auto t0 = std::chrono::steady_clock::now();
  // Rule 4: raw new outside a smart-pointer constructor.
  int* leak = new int(3);
  // Rule 5: unseeded C randomness.
  int r = rand();
  // Rule 6: [&] default capture handed to Engine::post.
  engine().post(now(), [&] { *leak += r; });
  // Rule 7: range-for over an unordered container.
  for (auto& kv : table_) {
    kv.second += 1;
  }
  // Rule 8: hand-built Switch outside src/topo/.
  auto sw = std::make_unique<hw::Switch>(config());
  // Rule 9: failure seam driven outside src/topo/ and src/fault/.
  sw->set_switch_down(true);
}

}  // namespace fixture

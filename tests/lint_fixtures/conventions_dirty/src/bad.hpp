// Fixture: one positive (violating) case per conventions_lint rule.
// Rule 1: no `#pragma once` — the first directive is the include below.
#include "nope/missing.hpp"

#include <unordered_map>

namespace fixture {

// Rule 11: mutable namespace-scope state without a written rationale.
inline int global_counter = 0;

class Bad {
 public:
  void tick();
  std::unordered_map<int, int> table_;
};

}  // namespace fixture

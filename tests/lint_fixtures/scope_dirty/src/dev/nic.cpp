// Fixture: dishonest scope labels, one violation per scope_check rule.
// No FABSIM_AUDIT_OWNED trap in the file either, so pass D fires too.
#include "nic.hpp"

namespace fixture {

void Nic::pump() {
  Peer* peer = lookup_peer();
  int count = 0;
  // scope_mismatch: `node_` is not the declared owner (`port_`).
  engine_->post(later(), /*scope=*/node_, [this, count] { inflight_ = count; });
  // unprovable_capture: raw pointer to foreign state, no SCOPE-OK.
  engine_->post(later(), /*scope=*/port_, [this, peer] { peer->poke(); });
  // unprovable_capture: by-reference capture under a confinement claim.
  engine_->post(later(), /*scope=*/port_, [this, &count] { inflight_ = count; });
  // empty_waiver: SCOPE-OK without a written rationale waives nothing.
  engine_->post(later(), /*scope=*/port_,  // SCOPE-OK()
                [this, peer] { peer->poke(); });
}

void Fabric::route() {
  // scope_mismatch: FABSIM_SHARED state captured under a confined scope.
  engine_->post(later(), /*scope=*/2, [this] { frames_ += 1; });
}

}  // namespace fixture

// Fixture: annotated classes whose post() sites lie about confinement —
// one positive case per scope_check.py rule.
#pragma once

namespace fixture {

class Nic {
 public:
  void pump();

 private:
  FABSIM_ENGINE_LOCAL;
  Engine* engine_ = nullptr;
  FABSIM_OWNED_BY(port_);
  int port_ = 0;
  int node_ = 0;
  int inflight_ = 0;
};

// Fabric-wide state: confined events must not touch it. No
// FABSIM_AUDIT_SHARED trap anywhere -> pass D flags the class too.
class Fabric {
 public:
  void route();

 private:
  FABSIM_SHARED;
  Engine* engine_ = nullptr;
  int frames_ = 0;
};

}  // namespace fixture

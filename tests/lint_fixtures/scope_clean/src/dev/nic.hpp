// Fixture: a fully-annotated device whose post() scope labels are
// honest — the negative case for every scope_check.py rule.
#pragma once

namespace fixture {

class Nic {
 public:
  void pump();

 private:
  FABSIM_ENGINE_LOCAL;  // wiring, fixed at construction
  Engine* engine_ = nullptr;
  FABSIM_OWNED_BY(port_);  // per-node progress state
  int port_ = 0;
  int inflight_ = 0;
};

}  // namespace fixture

// Fixture: honest scope labels — `this` under the class's declared
// owner, lambda-owned moves, plain value copies, a waived pointer
// capture with a written rationale, and the dynamic trap scope_check's
// pass D demands for every statically-trusted class.
#include "nic.hpp"

namespace fixture {

void Nic::pump() {
  FABSIM_AUDIT_OWNED(*engine_, check::Layer::kHw, port_, "Nic::pump");
  int credits = 3;
  Message msg = next_message();
  // Scope matches the FABSIM_OWNED_BY(port_) annotation; captures are
  // `this`, a value copy, and a lambda-owned move.
  engine_->post(later(), /*scope=*/port_,
                [this, credits, m = std::move(msg)] { inflight_ += credits; });
  // Unscoped (-1) posts claim nothing, so any capture is fine.
  engine_->post(later(), [this] { pump(); });
  Sink* sink = peer_sink();
  // Unprovable pointer capture, waived with a rationale.
  engine_->post(later(), /*scope=*/port_,  // SCOPE-OK(the sink belongs to this node's peer NIC object)
                [sink, credits] { sink->take(credits); });
}

}  // namespace fixture

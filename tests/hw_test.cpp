// Unit tests for the hardware models: fabric, PCI buses, CPU cost model,
// address space, and memory registration.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "hw/cpu.hpp"
#include "hw/fabric.hpp"
#include "hw/memory.hpp"
#include "hw/node.hpp"
#include "hw/pci.hpp"
#include "sim/engine.hpp"

namespace fabsim::hw {
namespace {

class RecordingSink : public FrameSink {
 public:
  explicit RecordingSink(Engine& engine) : engine_(&engine) {}
  void deliver(Frame frame) override {
    deliveries.emplace_back(engine_->now(), std::move(frame));
  }
  std::vector<std::pair<Time, Frame>> deliveries;

 private:
  Engine* engine_;
};

SwitchConfig test_switch_config() {
  return SwitchConfig{
      .link_rate = Rate::gbit_per_sec(10.0),  // 0.8 ns/byte
      .cut_through = ns(400),
      .propagation = ns(100),
  };
}

TEST(Switch, DeliversWithCutThroughAndSerialization) {
  Engine engine;
  Switch fabric(engine, test_switch_config());
  RecordingSink a(engine), b(engine);
  const int pa = fabric.attach(a);
  const int pb = fabric.attach(b);
  ASSERT_EQ(pa, 0);
  ASSERT_EQ(pb, 1);

  engine.post(0, [&] { fabric.ingress(Frame{pa, pb, 1000, {}}); });
  engine.run();

  ASSERT_EQ(b.deliveries.size(), 1u);
  // prop(100) + cut-through(400) + serialization(800) + prop(100)
  EXPECT_EQ(b.deliveries[0].first, ns(1400));
  EXPECT_TRUE(a.deliveries.empty());
}

TEST(Switch, OutputPortIsTheContentionPoint) {
  Engine engine;
  Switch fabric(engine, test_switch_config());
  RecordingSink a(engine), b(engine), c(engine);
  const int pa = fabric.attach(a);
  const int pb = fabric.attach(b);
  const int pc = fabric.attach(c);

  // Two sources send to the same destination at t=0: second frame queues
  // behind the first on the output port.
  engine.post(0, [&] {
    fabric.ingress(Frame{pa, pc, 1000, {}});
    fabric.ingress(Frame{pb, pc, 1000, {}});
  });
  engine.run();

  ASSERT_EQ(c.deliveries.size(), 2u);
  EXPECT_EQ(c.deliveries[0].first, ns(1400));
  EXPECT_EQ(c.deliveries[1].first, ns(2200));  // +800ns serialization
}

TEST(Switch, DistinctDestinationsDoNotContend) {
  Engine engine;
  Switch fabric(engine, test_switch_config());
  RecordingSink a(engine), b(engine), c(engine);
  const int pa = fabric.attach(a);
  const int pb = fabric.attach(b);
  const int pc = fabric.attach(c);

  engine.post(0, [&] {
    fabric.ingress(Frame{pa, pb, 1000, {}});
    fabric.ingress(Frame{pc, pa, 1000, {}});
  });
  engine.run();

  ASSERT_EQ(b.deliveries.size(), 1u);
  ASSERT_EQ(a.deliveries.size(), 1u);
  EXPECT_EQ(b.deliveries[0].first, ns(1400));
  EXPECT_EQ(a.deliveries[0].first, ns(1400));
}

TEST(Switch, TailDropsExactlyWhenBufferExceeded) {
  // Three 1000 B frames hit one output port at t=0. With a 2000 B buffer
  // the first serializes immediately, the second fills the buffer to the
  // byte (2000 == 2000 is NOT over), and the third overflows it.
  SwitchConfig config = test_switch_config();
  config.max_queue_bytes = 2000;
  Engine engine;
  Switch fabric(engine, config);
  RecordingSink a(engine), b(engine), c(engine), d(engine);
  const int pa = fabric.attach(a);
  const int pb = fabric.attach(b);
  const int pc = fabric.attach(c);
  const int pd = fabric.attach(d);

  engine.post(0, [&] {
    fabric.ingress(Frame{pa, pd, 1000, {}});
    fabric.ingress(Frame{pb, pd, 1000, {}});
    fabric.ingress(Frame{pc, pd, 1000, {}});
  });
  engine.run();

  ASSERT_EQ(d.deliveries.size(), 2u) << "frame at the exact boundary must be delivered";
  EXPECT_EQ(d.deliveries[0].first, ns(1400));
  EXPECT_EQ(d.deliveries[1].first, ns(2200));
  EXPECT_EQ(fabric.output_drops(pd), 1u);
}

TEST(Switch, TailDropsOneByteOverTheBoundary) {
  // Same arrival pattern, buffer one byte smaller: the second frame's
  // 2000 B of (backlog + frame) now exceeds 1999 and it is dropped too.
  SwitchConfig config = test_switch_config();
  config.max_queue_bytes = 1999;
  Engine engine;
  Switch fabric(engine, config);
  RecordingSink a(engine), b(engine), c(engine);
  const int pa = fabric.attach(a);
  const int pb = fabric.attach(b);
  const int pc = fabric.attach(c);

  engine.post(0, [&] {
    fabric.ingress(Frame{pa, pc, 1000, {}});
    fabric.ingress(Frame{pb, pc, 1000, {}});
  });
  engine.run();

  ASSERT_EQ(c.deliveries.size(), 1u);
  EXPECT_EQ(c.deliveries[0].first, ns(1400));
  EXPECT_EQ(fabric.output_drops(pc), 1u);
}

TEST(PcieBus, DirectionsAreIndependent) {
  PcieBus bus(PciConfig{Rate::mb_per_sec(2000.0), ns(250)});
  // 2000 MB/s => 0.5 ns/byte; 1 MB => 500 us.
  const Time r = bus.dma_read(0, 1'000'000);
  const Time w = bus.dma_write(0, 1'000'000);
  EXPECT_EQ(r, ns(250) + us(500));
  EXPECT_EQ(w, ns(250) + us(500));  // not queued behind the read
  const Time r2 = bus.dma_read(0, 1'000'000);
  EXPECT_EQ(r2, 2 * (ns(250) + us(500)));  // queued behind first read
}

TEST(PcixBus, HalfDuplexSharesOneServer) {
  PcixBus bus(PciConfig{Rate::mb_per_sec(1000.0), 0});
  const Time a = bus.transfer(0, 1'000'000);  // 1 ms
  const Time b = bus.transfer(0, 1'000'000);
  EXPECT_EQ(a, ms(1));
  EXPECT_EQ(b, ms(2));  // both directions contend
}

TEST(HostCpu, ComputeSerializes) {
  Engine engine;
  HostCpu cpu(engine);
  std::vector<Time> done;
  for (int i = 0; i < 2; ++i) {
    engine.spawn([](HostCpu& c, std::vector<Time>& d, Engine& e) -> Task<> {
      co_await c.compute(us(4));
      d.push_back(e.now());
    }(cpu, done, engine));
  }
  engine.run();
  EXPECT_EQ(done, (std::vector<Time>{us(4), us(8)}));
}

TEST(HostCpu, CopyCostScalesWithSizeAndWarmth) {
  Engine engine;
  CpuConfig config;
  config.memcpy_base = ns(60);
  config.memcpy_warm_rate = Rate::mb_per_sec(4000.0);
  config.memcpy_cold_rate = Rate::mb_per_sec(1000.0);
  config.cache_bytes = 64 * 1024;
  HostCpu cpu(engine, config);
  // First touch is cold: 1000 MB/s => 1 ns/byte.
  EXPECT_EQ(cpu.copy_cost(0x10000, 4000), ns(60) + ns(4000));
  // Second touch of the same buffer is warm: 4000 MB/s => 0.25 ns/byte.
  EXPECT_EQ(cpu.copy_cost(0x10000, 4000), ns(60) + ns(1000));
}

TEST(HostCpu, CacheEvictionMakesBuffersColdAgain) {
  Engine engine;
  CpuConfig config;
  config.cache_bytes = 16 * 4096;  // 16 pages
  HostCpu cpu(engine, config);
  const Time cold = cpu.copy_cost(0x100000, 4096);
  const Time warm = cpu.copy_cost(0x100000, 4096);
  EXPECT_LT(warm, cold);
  // Sweep 32 other pages to evict it.
  for (int i = 0; i < 32; ++i) cpu.copy_cost(0x200000 + 4096ull * i, 4096);
  EXPECT_EQ(cpu.copy_cost(0x100000, 4096), cold);
}

TEST(HostCpu, ChargeBooksSerially) {
  Engine engine;
  HostCpu cpu(engine);
  EXPECT_EQ(cpu.charge(us(1), us(2)), us(3));
  EXPECT_EQ(cpu.charge(us(1), us(2)), us(5));
}

TEST(AddressSpace, AllocWriteWindowRoundTrip) {
  AddressSpace mem;
  Buffer& buffer = mem.alloc(256);
  const std::uint64_t addr = buffer.addr();

  std::vector<std::byte> payload(64);
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<std::byte>(i * 3);
  mem.write(addr + 16, payload);

  auto view = mem.window(addr + 16, 64);
  EXPECT_EQ(std::memcmp(view.data(), payload.data(), payload.size()), 0);
}

TEST(AddressSpace, BuffersDoNotSharePages) {
  AddressSpace mem;
  Buffer& a = mem.alloc(100);
  Buffer& b = mem.alloc(100);
  EXPECT_NE(a.addr() / 4096, b.addr() / 4096);
}

TEST(AddressSpace, OutOfBoundsWriteThrows) {
  AddressSpace mem;
  Buffer& buffer = mem.alloc(32);
  std::vector<std::byte> payload(64);
  EXPECT_THROW(mem.write(buffer.addr(), payload), std::out_of_range);
  EXPECT_THROW(mem.write(0xdeadbeef, payload), std::out_of_range);
}

TEST(AddressSpace, SizeOnlyBufferAcceptsWrites) {
  AddressSpace mem;
  Buffer& buffer = mem.alloc(1 << 20, /*with_data=*/false);
  std::vector<std::byte> payload(4096);
  mem.write(buffer.addr(), payload);  // no throw, no storage
  EXPECT_FALSE(buffer.has_data());
  EXPECT_THROW(mem.window(buffer.addr(), 16), std::logic_error);
}

TEST(AddressSpace, FindByInteriorAddress) {
  AddressSpace mem;
  Buffer& buffer = mem.alloc(4096);
  EXPECT_EQ(mem.find(buffer.addr() + 4095), &buffer);
  EXPECT_EQ(mem.find(buffer.addr() + 4096), nullptr);
}

TEST(MemoryRegistry, RegisterLookupDeregister) {
  MemoryRegistry registry;
  const auto key = registry.register_region(0x1000, 8192);
  const auto* region = registry.lookup(key);
  ASSERT_NE(region, nullptr);
  EXPECT_EQ(region->addr, 0x1000u);
  EXPECT_TRUE(registry.covers(key, 0x1000, 8192));
  EXPECT_TRUE(registry.covers(key, 0x1800, 1024));
  EXPECT_FALSE(registry.covers(key, 0x1800, 8192));
  registry.deregister(key);
  EXPECT_EQ(registry.lookup(key), nullptr);
  EXPECT_THROW(registry.deregister(key), std::invalid_argument);
}

TEST(MemoryRegistry, CostModelIsPageGranular) {
  RegistrationConfig config;
  config.register_base = us(1);
  config.register_per_page = us(2);
  MemoryRegistry registry(config);
  EXPECT_EQ(registry.pages(1), 1u);
  EXPECT_EQ(registry.pages(4096), 1u);
  EXPECT_EQ(registry.pages(4097), 2u);
  EXPECT_EQ(registry.register_cost(4096), us(3));
  EXPECT_EQ(registry.register_cost(128 * 1024), us(1) + 32 * us(2));
}

TEST(Node, Assembles) {
  Engine engine;
  Node node(engine, 3, PciConfig{Rate::mb_per_sec(2000.0), ns(250)});
  EXPECT_EQ(node.id(), 3);
  Buffer& buffer = node.mem().alloc(64);
  EXPECT_EQ(node.mem().find(buffer.addr()), &buffer);
}

}  // namespace
}  // namespace fabsim::hw

// Fault-injection subsystem tests.
//
// Covers the FaultPlan decision logic in isolation, the switch-level
// injection point, and — most importantly — the per-stack recovery
// machinery the injector makes reachable: IB RC end-to-end retransmission
// (including retry exhaustion into the QP error state), the MX firmware
// resend queue for both eager and rendezvous traffic, and the iWARP
// go-back-N driven by engine-level (not adapter-local) loss. The
// no-faults runs pin the key invariant: an inert plan leaves every
// timing byte-identical to an uninstrumented run. The FabricFail
// section covers structural failures on routed Clos fabrics: link
// flaps mid-transfer (reroute + drain/requeue), silent switch
// partitions (retry exhaustion surfaces, nothing hangs), multi-hop
// fault determinism, and the FabricCheck negative test for the
// credit-accounting seam.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/invariant.hpp"
#include "core/cluster.hpp"
#include "fault/plan.hpp"
#include "hw/fabric.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"
#include "topo/topology.hpp"
#include "verbs/verbs.hpp"

namespace fabsim {
namespace {

using fault::FaultAction;
using fault::FaultPlan;
using fault::FaultSite;

// ---------------------------------------------------------------------------
// FaultPlan decision logic (no simulation required)
// ---------------------------------------------------------------------------

TEST(FaultPlan, InertByDefault) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  EXPECT_EQ(plan.on_frame(FaultSite{us(1), 0, 1, 100}).action, FaultAction::kDeliver);
  FaultPlan armed;
  armed.drop_probability(0.5);
  EXPECT_TRUE(armed.active());
}

TEST(FaultPlan, NthFrameIsOneShotAndOneBased) {
  FaultPlan plan;
  plan.nth_frame(2, FaultAction::kDrop);
  EXPECT_TRUE(plan.active());
  EXPECT_EQ(plan.on_frame(FaultSite{us(1), 0, 1, 100}).action, FaultAction::kDeliver);
  EXPECT_EQ(plan.on_frame(FaultSite{us(2), 0, 1, 100}).action, FaultAction::kDrop);
  EXPECT_EQ(plan.on_frame(FaultSite{us(3), 0, 1, 100}).action, FaultAction::kDeliver);
  EXPECT_EQ(plan.frames_seen(), 3u);
  EXPECT_EQ(plan.frames_dropped(), 1u);
}

TEST(FaultPlan, ScheduledEntryMatchesNodeOnceAtOrAfterTime) {
  FaultPlan plan;
  plan.at(us(10), 5, FaultAction::kDrop);
  // Too early, and wrong node after the deadline: untouched.
  EXPECT_EQ(plan.on_frame(FaultSite{us(5), 5, 1, 100}).action, FaultAction::kDeliver);
  EXPECT_EQ(plan.on_frame(FaultSite{us(11), 3, 7, 100}).action, FaultAction::kDeliver);
  // First frame touching node 5 at/after t=10us: dropped, exactly once.
  EXPECT_EQ(plan.on_frame(FaultSite{us(12), 5, 1, 100}).action, FaultAction::kDrop);
  EXPECT_EQ(plan.on_frame(FaultSite{us(13), 5, 1, 100}).action, FaultAction::kDeliver);
}

TEST(FaultPlan, LinkFlapDropsBothDirectionsInsideWindow) {
  FaultPlan plan;
  plan.link_flap(2, us(10), us(20));
  EXPECT_EQ(plan.on_frame(FaultSite{us(9), 2, 0, 100}).action, FaultAction::kDeliver);
  EXPECT_EQ(plan.on_frame(FaultSite{us(10), 2, 0, 100}).action, FaultAction::kDrop);
  EXPECT_EQ(plan.on_frame(FaultSite{us(15), 0, 2, 100}).action, FaultAction::kDrop);
  EXPECT_EQ(plan.on_frame(FaultSite{us(15), 0, 1, 100}).action, FaultAction::kDeliver)
      << "frames not touching the flapped node pass";
  EXPECT_EQ(plan.on_frame(FaultSite{us(20), 2, 0, 100}).action, FaultAction::kDeliver)
      << "window end is exclusive";
}

TEST(FaultPlan, NicStallDelaysUntilWindowCloses) {
  FaultPlan plan;
  plan.nic_stall(1, us(10), us(30));
  const auto decision = plan.on_frame(FaultSite{us(12), 1, 0, 100});
  EXPECT_EQ(decision.action, FaultAction::kDelay);
  EXPECT_EQ(decision.delay, us(18)) << "held until the stall window closes";
  EXPECT_EQ(plan.on_frame(FaultSite{us(30), 1, 0, 100}).action, FaultAction::kDeliver);
}

TEST(FaultPlan, SameSeedSameDecisions) {
  FaultPlan a(1234), b(1234);
  a.drop_probability(0.3).corrupt_probability(0.1);
  b.drop_probability(0.3).corrupt_probability(0.1);
  for (int i = 0; i < 200; ++i) {
    const FaultSite site{us(i), 0, 1, 100};
    EXPECT_EQ(a.on_frame(site).action, b.on_frame(site).action) << "frame " << i;
  }
  EXPECT_EQ(a.frames_dropped(), b.frames_dropped());
  EXPECT_EQ(a.frames_corrupted(), b.frames_corrupted());
  EXPECT_GT(a.frames_dropped(), 0u);
  EXPECT_GT(a.frames_corrupted(), 0u);
}

// ---------------------------------------------------------------------------
// Switch-level injection point
// ---------------------------------------------------------------------------

class CountingSink : public hw::FrameSink {
 public:
  explicit CountingSink(Engine& engine) : engine_(&engine) {}
  void deliver(hw::Frame frame) override {
    ++delivered;
    last_at = engine_->now();
    last_corrupted = frame.corrupted;
  }
  int delivered = 0;
  Time last_at = 0;
  bool last_corrupted = false;

 private:
  Engine* engine_;
};

TEST(SwitchFaults, DropCorruptAndDelayAtIngress) {
  Engine engine;
  FaultPlan plan;
  plan.nth_frame(1, FaultAction::kDrop)
      .nth_frame(2, FaultAction::kCorrupt)
      .nth_frame(3, FaultAction::kDelay, us(5));
  engine.set_fault_injector(&plan);
  hw::Switch fabric(engine, hw::SwitchConfig{Rate::gbit_per_sec(10.0), ns(400), ns(100)});
  CountingSink a(engine), b(engine);
  const int pa = fabric.attach(a);
  const int pb = fabric.attach(b);

  // Space arrivals out so each frame's port booking is independent.
  engine.post(0, [&] { fabric.ingress(hw::Frame{pa, pb, 1000, {}}); });
  engine.post(us(10), [&] { fabric.ingress(hw::Frame{pa, pb, 1000, {}}); });
  engine.post(us(20), [&] { fabric.ingress(hw::Frame{pa, pb, 1000, {}}); });
  engine.post(us(30), [&] { fabric.ingress(hw::Frame{pa, pb, 1000, {}}); });
  engine.run();

  EXPECT_EQ(b.delivered, 3) << "frame 1 dropped at the switch";
  EXPECT_EQ(fabric.fault_drops(), 1u);
  EXPECT_EQ(fabric.fault_corruptions(), 1u);
  EXPECT_EQ(fabric.fault_delays(), 1u);
  // Frame 4 (untouched): prop+cut_through+serialization+prop = 1.4us.
  EXPECT_EQ(b.last_at, us(30) + ns(1400));
  EXPECT_FALSE(b.last_corrupted);
}

// ---------------------------------------------------------------------------
// IB RC end-to-end retransmission
// ---------------------------------------------------------------------------

struct IbRun {
  Time finished = 0;
  verbs::Completion send_completion{};
  verbs::Completion recv_completion{};
  bool got_send = false;
  bool got_recv = false;
  bool qp0_error = false;
  std::uint64_t retransmits = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t corrupt_discards = 0;
};

/// One Send/Recv of `len` bytes from node 0 to node 1 over IB, with an
/// optional fault plan attached to the engine.
IbRun run_ib_send(FaultPlan* plan, std::uint32_t len, bool expect_recv = true,
                  core::NetworkProfile profile = core::ib_profile()) {
  core::Cluster cluster(2, profile);
  if (plan != nullptr) cluster.engine().set_fault_injector(plan);
  auto& src = cluster.node(0).mem().alloc(len, false);
  auto& dst = cluster.node(1).mem().alloc(len, false);

  IbRun out;
  // CQs and QPs outlive the coroutine: late duplicate acks (their frames
  // already in flight when the workload finishes) still reference them.
  verbs::CompletionQueue scq(cluster.engine());
  verbs::CompletionQueue rcq(cluster.engine());
  std::vector<std::unique_ptr<verbs::QueuePair>> qps;

  cluster.engine().spawn([](core::Cluster& c, verbs::CompletionQueue& send_cq,
                            verbs::CompletionQueue& recv_cq,
                            std::vector<std::unique_ptr<verbs::QueuePair>>& pairs, std::uint64_t s,
                            std::uint64_t d, std::uint32_t n, bool want_recv,
                            IbRun& result) -> Task<> {
    pairs.push_back(c.device(0).create_qp(send_cq, send_cq));
    pairs.push_back(c.device(1).create_qp(recv_cq, recv_cq));
    c.device(0).establish(*pairs[0], *pairs[1]);
    auto lkey = co_await c.device(0).reg_mr(s, n);
    auto rkey = co_await c.device(1).reg_mr(d, n);
    co_await pairs[1]->post_recv(verbs::RecvWr{.wr_id = 2, .sge = {d, n, rkey}});
    co_await pairs[0]->post_send(
        verbs::SendWr{.wr_id = 1, .opcode = verbs::Opcode::kSend, .sge = {s, n, lkey}});
    result.send_completion = co_await verbs::next_completion(send_cq, c.node(0).cpu(), ns(200));
    result.got_send = true;
    if (want_recv) {
      result.recv_completion = co_await verbs::next_completion(recv_cq, c.node(1).cpu(), ns(200));
      result.got_recv = true;
    }
    result.qp0_error = pairs[0]->in_error();
  }(cluster, scq, rcq, qps, src.addr(), dst.addr(), len, expect_recv, out));
  cluster.engine().run();

  out.finished = cluster.engine().now();
  out.retransmits = cluster.hca(0).retransmits();
  out.acks_sent = cluster.hca(1).acks_sent();
  out.corrupt_discards = cluster.hca(1).corrupt_discards();
  return out;
}

TEST(IbFaults, ZeroFaultPlanIsByteIdenticalToLosslessRun) {
  const std::uint32_t len = 64 * 1024;
  IbRun bare = run_ib_send(nullptr, len);
  FaultPlan inert;  // attached but inert: must not perturb anything
  IbRun with_plan = run_ib_send(&inert, len);

  ASSERT_TRUE(bare.got_recv);
  ASSERT_TRUE(with_plan.got_recv);
  EXPECT_EQ(bare.finished, with_plan.finished)
      << "an inert plan must leave the timeline byte-identical";
  EXPECT_EQ(with_plan.retransmits, 0u);
  EXPECT_EQ(with_plan.acks_sent, 0u) << "reliability must stay cold without active faults";
  EXPECT_GT(inert.frames_seen(), 0u) << "the plan was consulted, it just never acted";
}

TEST(IbFaults, SingleDropTriggersExactlyOneRetransmit) {
  const std::uint32_t len = 1024;  // single-MTU message
  FaultPlan plan;
  plan.nth_frame(1, FaultAction::kDrop);  // the lone data packet
  IbRun run = run_ib_send(&plan, len);

  EXPECT_EQ(plan.frames_dropped(), 1u);
  EXPECT_EQ(run.retransmits, 1u);
  ASSERT_TRUE(run.got_send);
  ASSERT_TRUE(run.got_recv);
  EXPECT_EQ(run.send_completion.status, verbs::Completion::Status::kSuccess);
  EXPECT_EQ(run.send_completion.wr_id, 1u);
  EXPECT_EQ(run.recv_completion.status, verbs::Completion::Status::kSuccess);
  EXPECT_EQ(run.recv_completion.byte_len, len);
  EXPECT_FALSE(run.qp0_error);
  EXPECT_GE(run.acks_sent, 1u);
}

TEST(IbFaults, CorruptedPacketIsDiscardedAndRetransmitted) {
  const std::uint32_t len = 1024;
  FaultPlan plan;
  plan.nth_frame(1, FaultAction::kCorrupt);
  IbRun run = run_ib_send(&plan, len);

  EXPECT_EQ(run.corrupt_discards, 1u) << "receiver must drop the bad-CRC packet";
  EXPECT_EQ(run.retransmits, 1u);
  ASSERT_TRUE(run.got_recv);
  EXPECT_EQ(run.recv_completion.byte_len, len);
}

TEST(IbFaults, RetryExhaustionMovesQpToErrorState) {
  core::NetworkProfile profile = core::ib_profile();
  profile.hca.rto = us(20);      // keep the backoff ladder short
  profile.hca.retry_limit = 3;
  FaultPlan plan;
  plan.link_flap(/*node=*/0, 0, sec(10.0));  // node 0 unreachable, forever
  IbRun run = run_ib_send(&plan, 1024, /*expect_recv=*/false, profile);

  ASSERT_TRUE(run.got_send);
  EXPECT_EQ(run.send_completion.status, verbs::Completion::Status::kRetryExceeded);
  EXPECT_EQ(run.send_completion.wr_id, 1u);
  EXPECT_TRUE(run.qp0_error);
  EXPECT_EQ(run.retransmits, 3u) << "one go-back-N round per retry before exhaustion";
}

TEST(IbFaults, RecoveryAfterLinkFlapWindowCloses) {
  FaultPlan plan;
  plan.link_flap(/*node=*/1, 0, us(150));  // outage covers the first RTO round
  IbRun run = run_ib_send(&plan, 8 * 1024);

  ASSERT_TRUE(run.got_recv);
  EXPECT_EQ(run.recv_completion.byte_len, 8u * 1024u);
  EXPECT_GT(plan.frames_dropped(), 0u);
  EXPECT_GT(run.retransmits, 0u);
  EXPECT_FALSE(run.qp0_error);
}

TEST(IbFaults, SameSeedReproducesIdenticalRetryCounts) {
  const std::uint32_t len = 256 * 1024;
  FaultPlan a(99), b(99);
  a.drop_probability(0.05);
  b.drop_probability(0.05);
  IbRun first = run_ib_send(&a, len);
  IbRun second = run_ib_send(&b, len);

  ASSERT_TRUE(first.got_recv);
  ASSERT_TRUE(second.got_recv);
  EXPECT_GT(a.frames_dropped(), 0u);
  EXPECT_EQ(a.frames_dropped(), b.frames_dropped());
  EXPECT_EQ(first.retransmits, second.retransmits);
  EXPECT_EQ(first.acks_sent, second.acks_sent);
  EXPECT_EQ(first.finished, second.finished) << "whole-run determinism, not just counters";
}

TEST(IbFaults, TraceRecordsNakDrivenRecoverySequence) {
  // Drop the middle of a multi-packet message: the receiver sees a PSN
  // gap, NAKs once, and the sender go-back-N retransmits — all without
  // waiting for the RTO. The kProto trace pins the sequence down.
  core::Cluster cluster(2, core::ib_profile());
  FaultPlan plan;
  plan.nth_frame(2, FaultAction::kDrop);
  cluster.engine().set_fault_injector(&plan);
  Tracer tracer;
  cluster.engine().set_tracer(&tracer);
  const std::uint32_t len = 8 * 1024;  // 4 MTU-size packets
  auto& src = cluster.node(0).mem().alloc(len, false);
  auto& dst = cluster.node(1).mem().alloc(len, false);

  verbs::CompletionQueue scq(cluster.engine());
  verbs::CompletionQueue rcq(cluster.engine());
  std::vector<std::unique_ptr<verbs::QueuePair>> qps;
  cluster.engine().spawn([](core::Cluster& c, verbs::CompletionQueue& send_cq,
                            verbs::CompletionQueue& recv_cq,
                            std::vector<std::unique_ptr<verbs::QueuePair>>& pairs, std::uint64_t s,
                            std::uint64_t d, std::uint32_t n) -> Task<> {
    pairs.push_back(c.device(0).create_qp(send_cq, send_cq));
    pairs.push_back(c.device(1).create_qp(recv_cq, recv_cq));
    c.device(0).establish(*pairs[0], *pairs[1]);
    auto lkey = co_await c.device(0).reg_mr(s, n);
    auto rkey = co_await c.device(1).reg_mr(d, n);
    co_await pairs[1]->post_recv(verbs::RecvWr{.wr_id = 2, .sge = {d, n, rkey}});
    co_await pairs[0]->post_send(
        verbs::SendWr{.wr_id = 1, .opcode = verbs::Opcode::kSend, .sge = {s, n, lkey}});
    co_await verbs::next_completion(recv_cq, c.node(1).cpu(), ns(200));
  }(cluster, scq, rcq, qps, src.addr(), dst.addr(), len));
  cluster.engine().run();

  EXPECT_EQ(tracer.count_containing("IB RC NAK"), 1u) << "one NAK per gap, not per packet";
  EXPECT_GE(tracer.count_containing("IB RC retransmit"), 1u);
  EXPECT_EQ(tracer.count_containing("RTO fired"), 0u) << "NAK repairs before the timer";

  // Order: the NAK precedes the retransmit that answers it.
  std::size_t nak_at = 0, rexmit_at = 0;
  for (std::size_t i = 0; i < tracer.entries().size(); ++i) {
    const auto& label = tracer.entries()[i].label;
    if (nak_at == 0 && label.find("IB RC NAK") != std::string::npos) nak_at = i + 1;
    if (rexmit_at == 0 && label.find("IB RC retransmit") != std::string::npos) rexmit_at = i + 1;
  }
  EXPECT_LT(nak_at, rexmit_at);
}

TEST(IbFaults, RetryExhaustionWithPendingReadFlushesCompletion) {
  // Regression: an RDMA Read whose *request* was delivered and acked but
  // whose *response* is lost forever used to hang silently — the
  // requester's inflight queue was empty (the request was acked away), so
  // no timer fired on its side, the responder exhausted its retries alone,
  // and the read's completion never materialized (under-counting
  // kRetryExceeded). Now the responder propagates its terminal failure to
  // the peer, the requester flushes the stranded read with kRetryExceeded,
  // and the invariant monitor records the QP-died-with-pending-work event.
  core::NetworkProfile profile = core::ib_profile();
  profile.hca.rto = us(20);
  profile.hca.retry_limit = 3;
  core::Cluster cluster(2, profile);
  check::InvariantMonitor& monitor = cluster.enable_checks(/*fatal=*/false);

  // Frame order for a 1-packet read: f1 = request (0->1), f2 = ack
  // (1->0), f3 = response (1->0). Drop the response and every retransmit
  // of it; the request and its ack sail through.
  FaultPlan plan;
  for (std::uint64_t n = 3; n <= 12; ++n) plan.nth_frame(n, FaultAction::kDrop);
  cluster.engine().set_fault_injector(&plan);

  const std::uint32_t len = 1024;  // single MTU: exactly one response packet
  auto& sink = cluster.node(0).mem().alloc(len, false);
  auto& source = cluster.node(1).mem().alloc(len, false);

  IbRun out;
  verbs::CompletionQueue scq(cluster.engine());
  verbs::CompletionQueue rcq(cluster.engine());
  std::vector<std::unique_ptr<verbs::QueuePair>> qps;
  cluster.engine().spawn([](core::Cluster& c, verbs::CompletionQueue& send_cq,
                            verbs::CompletionQueue& recv_cq,
                            std::vector<std::unique_ptr<verbs::QueuePair>>& pairs, std::uint64_t s,
                            std::uint64_t d, std::uint32_t n, IbRun& result) -> Task<> {
    pairs.push_back(c.device(0).create_qp(send_cq, send_cq));
    pairs.push_back(c.device(1).create_qp(recv_cq, recv_cq));
    c.device(0).establish(*pairs[0], *pairs[1]);
    auto lkey = co_await c.device(0).reg_mr(d, n);
    auto rkey = co_await c.device(1).reg_mr(s, n);
    co_await pairs[0]->post_send(verbs::SendWr{.wr_id = 1,
                                               .opcode = verbs::Opcode::kRdmaRead,
                                               .sge = {d, n, lkey},
                                               .remote_addr = s,
                                               .rkey = rkey});
    result.send_completion = co_await verbs::next_completion(send_cq, c.node(0).cpu(), ns(200));
    result.got_send = true;
    result.qp0_error = pairs[0]->in_error();
  }(cluster, scq, rcq, qps, source.addr(), sink.addr(), len, out));
  cluster.engine().run();

  ASSERT_TRUE(out.got_send) << "the stranded read must complete, not hang";
  EXPECT_EQ(out.send_completion.status, verbs::Completion::Status::kRetryExceeded);
  EXPECT_EQ(out.send_completion.wr_id, 1u);
  EXPECT_EQ(out.send_completion.type, verbs::Completion::Type::kRdmaRead);
  EXPECT_TRUE(out.qp0_error) << "peer failure must move the requester QP to error";
  EXPECT_EQ(cluster.hca(0).retry_exceeded_completions(), 1u)
      << "the flushed read is accounted under kRetryExceeded";

  // The monitor saw the QP die with work still pending.
  bool reported = false;
  for (const auto& v : monitor.violations()) {
    if (v.rule == "error_pending_completion") reported = true;
  }
  EXPECT_TRUE(reported) << "enter_error with pending reads must be reported";
}

// ---------------------------------------------------------------------------
// MX reliable delivery
// ---------------------------------------------------------------------------

struct MxRun {
  Time finished = 0;
  bool send_done = false;
  bool recv_done = false;
  std::uint32_t recv_len = 0;
  std::uint64_t resends = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t corrupt_discards = 0;
};

MxRun run_mx_send(FaultPlan* plan, std::uint32_t len,
                  core::NetworkProfile profile = core::mxoe_profile()) {
  core::Cluster cluster(2, profile);
  if (plan != nullptr) cluster.engine().set_fault_injector(plan);
  auto& src = cluster.node(0).mem().alloc(len, false);
  auto& dst = cluster.node(1).mem().alloc(len, false);

  MxRun out;
  cluster.engine().spawn(
      [](core::Cluster& c, std::uint64_t s, std::uint32_t n, MxRun& result) -> Task<> {
        auto request = co_await c.endpoint(0).isend(s, n, c.endpoint(1).port(), 7);
        co_await c.endpoint(0).wait(request);
        result.send_done = request->done();
      }(cluster, src.addr(), len, out));
  cluster.engine().spawn(
      [](core::Cluster& c, std::uint64_t d, std::uint32_t n, MxRun& result) -> Task<> {
        auto request = co_await c.endpoint(1).irecv(d, n, 7, ~0ull);
        co_await c.endpoint(1).wait(request);
        result.recv_done = request->done();
        result.recv_len = request->length();
      }(cluster, dst.addr(), len, out));
  cluster.engine().run();

  out.finished = cluster.engine().now();
  out.resends = cluster.endpoint(0).resends() + cluster.endpoint(1).resends();
  out.acks_sent = cluster.endpoint(0).acks_sent() + cluster.endpoint(1).acks_sent();
  out.corrupt_discards = cluster.endpoint(1).corrupt_discards();
  return out;
}

TEST(MxFaults, ZeroFaultPlanIsByteIdenticalToLosslessRun) {
  for (const std::uint32_t len : {16u * 1024u, 64u * 1024u}) {  // eager and rendezvous
    MxRun bare = run_mx_send(nullptr, len);
    FaultPlan inert;
    MxRun with_plan = run_mx_send(&inert, len);
    ASSERT_TRUE(bare.recv_done);
    ASSERT_TRUE(with_plan.recv_done);
    EXPECT_EQ(bare.finished, with_plan.finished) << "len=" << len;
    EXPECT_EQ(with_plan.resends, 0u);
    EXPECT_EQ(with_plan.acks_sent, 0u) << "reliability must stay cold without active faults";
  }
}

TEST(MxFaults, RecoversDroppedEagerFrame) {
  core::NetworkProfile profile = core::mxoe_profile();
  profile.mx.rto = us(50);
  FaultPlan plan;
  plan.nth_frame(1, FaultAction::kDrop);  // the lone eager data frame
  MxRun run = run_mx_send(&plan, 4096, profile);

  EXPECT_EQ(plan.frames_dropped(), 1u);
  EXPECT_TRUE(run.send_done);
  ASSERT_TRUE(run.recv_done);
  EXPECT_EQ(run.recv_len, 4096u);
  EXPECT_GE(run.resends, 1u);
}

TEST(MxFaults, RecoversDroppedRendezvousRts) {
  core::NetworkProfile profile = core::mxoe_profile();
  profile.mx.rto = us(50);
  FaultPlan plan;
  plan.nth_frame(1, FaultAction::kDrop);  // the RTS itself
  const std::uint32_t len = 64 * 1024;    // > eager_max: rendezvous path
  MxRun run = run_mx_send(&plan, len, profile);

  EXPECT_EQ(plan.frames_dropped(), 1u);
  ASSERT_TRUE(run.recv_done);
  EXPECT_EQ(run.recv_len, len);
  EXPECT_GE(run.resends, 1u);
}

TEST(MxFaults, RecoversRandomRendezvousLossDeterministically) {
  const std::uint32_t len = 256 * 1024;
  core::NetworkProfile profile = core::mxoe_profile();
  profile.mx.rto = us(100);
  FaultPlan a(7), b(7);
  a.drop_probability(0.05);
  b.drop_probability(0.05);
  MxRun first = run_mx_send(&a, len, profile);
  MxRun second = run_mx_send(&b, len, profile);

  ASSERT_TRUE(first.recv_done);
  EXPECT_EQ(first.recv_len, len);
  EXPECT_GT(a.frames_dropped(), 0u);
  EXPECT_GT(first.resends, 0u);
  // Same seed, same plan: identical drop schedule, resend count, timing.
  EXPECT_EQ(a.frames_dropped(), b.frames_dropped());
  EXPECT_EQ(first.resends, second.resends);
  EXPECT_EQ(first.finished, second.finished);
}

TEST(MxFaults, CorruptedEagerFrameIsDiscardedAndResent) {
  core::NetworkProfile profile = core::mxoe_profile();
  profile.mx.rto = us(50);
  FaultPlan plan;
  plan.nth_frame(1, FaultAction::kCorrupt);
  MxRun run = run_mx_send(&plan, 4096, profile);

  EXPECT_EQ(run.corrupt_discards, 1u);
  ASSERT_TRUE(run.recv_done);
  EXPECT_EQ(run.recv_len, 4096u);
  EXPECT_GE(run.resends, 1u);
}

// ---------------------------------------------------------------------------
// Fabric failures on routed topologies (FabricFail)
// ---------------------------------------------------------------------------

struct ClosRun {
  verbs::Completion send[2]{};
  bool sent_ok[2] = {false, false};
  bool placed[2] = {false, false};
  bool qp0_error = false;
  int epochs = 0;  // LFT recomputes observed during the run
  std::uint64_t digest = 0;
  std::uint64_t violations = 0;
  std::string first_rule;
};

/// Two concurrent 16KB RDMA writes (nodes 0 and 1 -> node 3) across a
/// 2-level credit-flow-control Clos, under one of two failure shapes:
///
///  * flap (partition=false): the uplink both flows route through
///    (link 1 = leaf0 <-> spine1, by the dst % spines tie-break) goes
///    down mid-transfer and comes back 25us later. The trigger polls
///    the uplink's queue at fixed times and fires at the first tick
///    that finds frames queued behind it, so the drain/requeue path is
///    genuinely exercised no matter how long QP setup takes — and the
///    poll times are fixed, so the run stays deterministic.
///  * partition (partition=true): the writers' shared edge switch dies
///    *silently* — an undetected failure, injected through the
///    FaultPlan seam the way ext_chaos does it, so the stacks arm their
///    reliability machinery (faults_armed) — for longer than the whole
///    retry ladder. Both flows must surface kRetryExceeded rather than
///    hang. Note the split: detected structural failures (topo.fail_*)
///    are repaired losslessly by reroute + credit requeue and need no
///    stack recovery at all; only *undetected* loss needs an armed plan.
ClosRun run_clos_writes(bool leak_seam, bool partition) {
  core::NetworkProfile profile = core::ib_profile();
  profile.hca.rto = us(20);
  profile.hca.retry_limit = partition ? 3 : 5;
  profile.fabric = topo::FabricSpec{2, 4, 1.0, hw::FlowControl::kCredit};
  profile.switch_cfg.max_queue_bytes = 4096;  // ~2 MTUs: queues build behind the uplink
  profile.switch_cfg.mutation_leak_credit_on_drain = leak_seam;
  core::Cluster cluster(4, profile);
  check::InvariantMonitor& monitor = cluster.enable_checks(/*fatal=*/false);
  topo::Topology& topo = cluster.topology();
  const int epoch_before = topo.lft_epoch();

  FaultPlan plan;
  if (partition) {
    plan.switch_down(topo.edge_index_of(0), us(0), ms(500));
    cluster.engine().set_fault_injector(&plan);
  } else {
    const topo::Topology::LinkRec uplink = topo.links()[1];
    topo::Topology* tp = &topo;
    Engine* eng = &cluster.engine();
    auto flapped = std::make_shared<bool>(false);
    for (int tick = 2; tick <= 400; tick += 2) {
      eng->post(us(tick), [tp, eng, flapped, uplink] {
        if (*flapped) return;
        if (tp->sw(uplink.a).output_queue_frames(uplink.port_a) == 0) return;
        *flapped = true;
        tp->fail_link(1);
        eng->post(eng->now() + us(25), [tp] { tp->restore_link(1); });
      });
    }
  }

  const std::uint32_t len = 16 * 1024;
  ClosRun out;
  std::vector<std::unique_ptr<verbs::CompletionQueue>> cqs;
  std::vector<std::unique_ptr<verbs::QueuePair>> qps;
  for (int s = 0; s < 2; ++s) {
    auto& src = cluster.node(s).mem().alloc(len, false);
    auto& dst = cluster.node(3).mem().alloc(len, false);
    cqs.push_back(std::make_unique<verbs::CompletionQueue>(cluster.engine()));
    auto dst_qp = cluster.device(3).create_qp(*cqs.back(), *cqs.back());
    auto src_qp = cluster.device(s).create_qp(*cqs.back(), *cqs.back());
    cluster.device(3).establish(*dst_qp, *src_qp);
    cluster.engine().spawn([](core::Cluster& c, verbs::QueuePair& qp, verbs::CompletionQueue& cq,
                              int sender, std::uint64_t sa, std::uint64_t da, std::uint32_t n,
                              verbs::Completion* comp, bool* sent_ok, bool* was_placed) -> Task<> {
      auto lkey = co_await c.device(sender).reg_mr(sa, n);
      auto rkey = co_await c.device(3).reg_mr(da, n);
      auto watch = c.device(3).watch_placement(da, n);
      co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                          .opcode = verbs::Opcode::kRdmaWrite,
                                          .sge = {sa, n, lkey},
                                          .remote_addr = da,
                                          .rkey = rkey});
      *comp = co_await verbs::next_completion(cq, c.node(sender).cpu(), ns(200));
      *sent_ok = comp->status == verbs::Completion::Status::kSuccess;
      // A failed write never places its bytes; waiting would strand this
      // coroutine and trip the lost-wakeup audit.
      if (*sent_ok) {
        co_await watch->wait();
        *was_placed = true;
      }
    }(cluster, *src_qp, *cqs.back(), s, src.addr(), dst.addr(), len, &out.send[s],
      &out.sent_ok[s], &out.placed[s]));
    qps.push_back(std::move(dst_qp));
    qps.push_back(std::move(src_qp));
  }
  cluster.engine().run();

  out.qp0_error = qps[1]->in_error();
  out.epochs = topo.lft_epoch() - epoch_before;
  MetricRegistry registry;
  cluster.collect_metrics(registry);
  out.digest = registry.counter_value("sim.digest");
  out.violations = monitor.violation_count();
  if (!monitor.violations().empty()) out.first_rule = monitor.violations()[0].rule;
  return out;
}

TEST(FabricFaults, LinkFlapMidTransferReroutesAndRecovers) {
  const ClosRun r = run_clos_writes(/*leak_seam=*/false, /*partition=*/false);
  EXPECT_GE(r.epochs, 2) << "the down/up window must drive two LFT recomputes";
  EXPECT_TRUE(r.sent_ok[0]);
  EXPECT_TRUE(r.sent_ok[1]);
  EXPECT_TRUE(r.placed[0]) << "writer 0's bytes must arrive via the rerouted path";
  EXPECT_TRUE(r.placed[1]);
  EXPECT_FALSE(r.qp0_error);
  EXPECT_EQ(r.violations, 0u) << "drain/requeue must conserve frames and credits: "
                              << r.first_rule;
}

TEST(FabricFaults, MultiHopFaultRunsAreDigestStable) {
  const ClosRun a = run_clos_writes(/*leak_seam=*/false, /*partition=*/false);
  const ClosRun b = run_clos_writes(/*leak_seam=*/false, /*partition=*/false);
  EXPECT_EQ(a.digest, b.digest) << "reroute + drain must not break run determinism";
}

TEST(FabricFaults, SilentEdgeSwitchPartitionSurfacesRetryExhaustion) {
  const ClosRun r = run_clos_writes(/*leak_seam=*/false, /*partition=*/true);
  ASSERT_TRUE(r.send[0].wr_id == 1u && r.send[1].wr_id == 1u)
      << "both writes must complete (with an error), not hang";
  EXPECT_EQ(r.send[0].status, verbs::Completion::Status::kRetryExceeded);
  EXPECT_EQ(r.send[1].status, verbs::Completion::Status::kRetryExceeded);
  EXPECT_FALSE(r.placed[0]);
  EXPECT_TRUE(r.qp0_error) << "retry exhaustion must move the QP to the error state";
  EXPECT_EQ(r.violations, 0u)
      << "a surfaced error is a clean outcome, not an invariant violation: " << r.first_rule;
}

// The FabricCheck negative test for the credit-accounting seam: arm the
// test-only leak (the link-failure drain "forgets" to return one frame's
// committed buffer space) and prove the quiescence audit catches it.
TEST(FabricFaults, LeakedCreditOnDrainIsCaughtByFabricCheck) {
  const ClosRun r = run_clos_writes(/*leak_seam=*/true, /*partition=*/false);
  EXPECT_GE(r.violations, 1u) << "the leaked occupancy must not go unnoticed";
  EXPECT_EQ(r.first_rule, "queue_not_drained");
  // The leak is an accounting bug, not a data-loss bug: every byte still
  // lands, only the quiescent credit identity is broken.
  EXPECT_TRUE(r.placed[0]);
  EXPECT_TRUE(r.placed[1]);
}

// ---------------------------------------------------------------------------
// iWARP go-back-N driven by the engine-level injector
// ---------------------------------------------------------------------------

TEST(IwarpFaults, EngineInjectorDrivesGoBackN) {
  // No adapter-local loss_rate: every drop comes from the engine-level
  // plan, and the RNIC must still arm its retry timers (faults_armed).
  core::Cluster cluster(2, core::Network::kIwarp);
  FaultPlan plan(11);
  plan.drop_probability(0.05);
  cluster.engine().set_fault_injector(&plan);
  const std::uint32_t len = 256 * 1024;
  auto& src = cluster.node(0).mem().alloc(len, false);
  auto& dst = cluster.node(1).mem().alloc(len, false);

  bool placed = false;
  cluster.engine().spawn([](core::Cluster& c, std::uint64_t s, std::uint64_t d, std::uint32_t n,
                            bool& done) -> Task<> {
    verbs::CompletionQueue cq(c.engine());
    auto qp0 = c.device(0).create_qp(cq, cq);
    auto qp1 = c.device(1).create_qp(cq, cq);
    c.device(0).establish(*qp0, *qp1);
    auto lkey = co_await c.device(0).reg_mr(s, n);
    auto rkey = co_await c.device(1).reg_mr(d, n);
    auto watch = c.device(1).watch_placement(d, n);
    co_await qp0->post_send(verbs::SendWr{.wr_id = 1,
                                          .opcode = verbs::Opcode::kRdmaWrite,
                                          .sge = {s, n, lkey},
                                          .remote_addr = d,
                                          .rkey = rkey});
    co_await watch->wait();
    done = true;
  }(cluster, src.addr(), dst.addr(), len, placed));
  cluster.engine().run();

  EXPECT_TRUE(placed) << "go-back-N must recover engine-injected loss";
  EXPECT_GT(plan.frames_dropped(), 0u);
  EXPECT_GT(cluster.rnic(0).retransmits(), 0u);
}

}  // namespace
}  // namespace fabsim

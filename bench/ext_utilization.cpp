// Extension X11 — where does the time go? Resource utilization during a
// saturating one-way verbs transfer, per network. This is the
// quantitative backing for DESIGN.md's bottleneck table: the resource
// the paper names should be the one pinned near 100%.
#include <cstdio>

#include "core/cluster.hpp"
#include "core/report.hpp"
#include "core/runners.hpp"

using namespace fabsim;
using namespace fabsim::core;

namespace {

void run_verbs(Network network, Report& report) {
  Cluster cluster(2, network);
  MetricRegistry registry;
  cluster.engine().set_metrics(&registry);
  verbs::CompletionQueue cq(cluster.engine());
  auto qp0 = cluster.device(0).create_qp(cq, cq);
  auto qp1 = cluster.device(1).create_qp(cq, cq);
  cluster.device(0).establish(*qp0, *qp1);
  const std::uint32_t len = 8 << 20;
  auto& src = cluster.node(0).mem().alloc(len, false);
  auto& dst = cluster.node(1).mem().alloc(len, false);
  Time start = 0, end = 0;
  cluster.engine().spawn([](Cluster& c, verbs::QueuePair& qp, std::uint64_t s, std::uint64_t d,
                            std::uint32_t n, Time* t0, Time* t1) -> Task<> {
    auto lkey = co_await c.device(0).reg_mr(s, n);
    auto rkey = co_await c.device(1).reg_mr(d, n);
    auto watch = c.device(1).watch_placement(d, n);
    *t0 = c.engine().now();
    co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                        .opcode = verbs::Opcode::kRdmaWrite,
                                        .sge = {s, n, lkey},
                                        .remote_addr = d,
                                        .rkey = rkey});
    co_await watch->wait();
    *t1 = c.engine().now();
  }(cluster, *qp0, src.addr(), dst.addr(), len, &start, &end));
  cluster.engine().run();
  cluster.collect_metrics(registry);

  const double span = static_cast<double>(end - start);
  auto pct = [span](Time busy) { return 100.0 * static_cast<double>(busy) / span; };
  const std::string prefix = std::string(network_name(network)) + ".";
  auto emit = [&](const char* label, const char* key, double value, const char* note = "") {
    std::printf("  %-21s %5.1f%%%s\n", label, value, note);
    report.add_scalar(prefix + key, value, "%");
  };

  std::printf("%s one-way 8 MB RDMA write (%.0f us):\n", network_name(network),
              to_us(end - start));
  if (network == Network::kIwarp) {
    emit("sender tx engine", "sender_tx_engine_pct", pct(cluster.rnic(0).tx_engine_busy_time()),
         "   <- paper: engine-rate bound (~880 MB/s)");
    emit("sender PCI-X bus", "sender_pcix_pct", pct(cluster.rnic(0).pcix_busy_time()));
    emit("sender 10GbE link", "sender_link_pct", pct(cluster.rnic(0).tx_link_busy_time()));
    emit("receiver rx engine", "receiver_rx_engine_pct",
         pct(cluster.rnic(1).rx_engine_busy_time()));
    emit("receiver PCI-X bus", "receiver_pcix_pct", pct(cluster.rnic(1).pcix_busy_time()));
  } else {
    emit("sender IB link", "sender_link_pct", pct(cluster.hca(0).tx_link_busy_time()),
         "   <- paper: link bound (97% of 1 GB/s)");
    emit("sender proc engine", "sender_proc_pct", pct(cluster.hca(0).proc_busy_time()));
    emit("sender DMA engine", "sender_dma_pct", pct(cluster.hca(0).dma_busy_time()));
    emit("receiver DMA engine", "receiver_dma_pct", pct(cluster.hca(1).dma_busy_time()));
  }
  std::printf("\n");
  report.add_metrics(registry, prefix);
}

void run_mx(Network network, Report& report) {
  Cluster cluster(2, network);
  MetricRegistry registry;
  cluster.engine().set_metrics(&registry);
  const std::uint32_t len = 8 << 20;
  auto& src = cluster.node(0).mem().alloc(len, false);
  auto& dst = cluster.node(1).mem().alloc(len, false);
  Time start = 0, end = 0;
  cluster.engine().spawn([](Cluster& c, std::uint64_t s, std::uint64_t d, std::uint32_t n,
                            Time* t0, Time* t1) -> Task<> {
    auto& ep0 = c.endpoint(0);
    auto& ep1 = c.endpoint(1);
    // Warmup pass pays the one-time pinning; the measured pass hits the
    // registration cache on both sides.
    {
      auto rx = co_await ep1.irecv(d, n, 1, ~0ull);
      auto tx = co_await ep0.isend(s, n, ep1.port(), 1);
      co_await ep1.wait(rx);
      co_await ep0.wait(tx);
    }
    auto rx = co_await ep1.irecv(d, n, 1, ~0ull);
    *t0 = c.engine().now();
    auto tx = co_await ep0.isend(s, n, ep1.port(), 1);
    co_await ep1.wait(rx);
    *t1 = c.engine().now();
    co_await ep0.wait(tx);
  }(cluster, src.addr(), dst.addr(), len, &start, &end));
  cluster.engine().run();
  cluster.collect_metrics(registry);

  // Busy counters include the warmup pass; both passes move the same
  // bytes, so halving them approximates the measured pass's share.
  const double span = static_cast<double>(end - start);
  auto pct = [span](Time busy) { return 100.0 * static_cast<double>(busy) / 2.0 / span; };
  const std::string prefix = std::string(network_name(network)) + ".";
  auto emit = [&](const char* label, const char* key, double value, const char* note = "") {
    std::printf("  %-21s %5.1f%%%s\n", label, value, note);
    report.add_scalar(prefix + key, value, "%");
  };
  std::printf("%s one-way 8 MB rendezvous (%.0f us):\n", network_name(network),
              to_us(end - start));
  emit("sender PCIe x4 (read)", "sender_pcie_read_pct",
       pct(cluster.node(0).pcie().read_busy_time()),
       "   <- paper: forced-x4 bound (<=75% of 10G)");
  emit("sender NIC DMA engine", "sender_dma_pct", pct(cluster.endpoint(0).dma_busy_time()));
  emit("sender 10G link", "sender_link_pct", pct(cluster.endpoint(0).tx_link_busy_time()));
  emit("receiver NIC DMA", "receiver_dma_pct", pct(cluster.endpoint(1).dma_busy_time()));
  std::printf("\n");
  report.add_metrics(registry, prefix);
}

}  // namespace

int main() {
  std::printf("=== Extension X11: resource utilization at saturation ===\n\n");

  Report report("ext_utilization");
  report.add_note("resource utilization during a saturating 8 MB one-way transfer");
  report.add_note("probe: 1KB user-level latency histograms for the same three networks");

  run_verbs(Network::kIwarp, report);
  run_verbs(Network::kIb, report);
  run_mx(Network::kMxom, report);

  // Latency-distribution probe so the report carries p50/p99 alongside
  // the saturation utilization numbers.
  for (Network n : {Network::kIwarp, Network::kIb, Network::kMxom}) {
    Histogram hist;
    userlevel_pingpong_latency_us(profile(n), 1024, 30, &hist);
    report.add_histogram(std::string(network_name(n)) + ".latency_us", hist);
  }
  report.write();

  std::printf(
      "The resource DESIGN.md names as each network's bottleneck should sit\n"
      "near 100%% while everything else idles below it.\n");
  return 0;
}

// Extension X11 — where does the time go? Resource utilization during a
// saturating one-way verbs transfer, per network. This is the
// quantitative backing for DESIGN.md's bottleneck table: the resource
// the paper names should be the one pinned near 100%.
#include <cstdio>

#include "core/cluster.hpp"
#include "core/report.hpp"

using namespace fabsim;
using namespace fabsim::core;

namespace {

void run_verbs(Network network) {
  Cluster cluster(2, network);
  verbs::CompletionQueue cq(cluster.engine());
  auto qp0 = cluster.device(0).create_qp(cq, cq);
  auto qp1 = cluster.device(1).create_qp(cq, cq);
  cluster.device(0).establish(*qp0, *qp1);
  const std::uint32_t len = 8 << 20;
  auto& src = cluster.node(0).mem().alloc(len, false);
  auto& dst = cluster.node(1).mem().alloc(len, false);
  Time start = 0, end = 0;
  cluster.engine().spawn([](Cluster& c, verbs::QueuePair& qp, std::uint64_t s, std::uint64_t d,
                            std::uint32_t n, Time* t0, Time* t1) -> Task<> {
    auto lkey = co_await c.device(0).reg_mr(s, n);
    auto rkey = co_await c.device(1).reg_mr(d, n);
    auto watch = c.device(1).watch_placement(d, n);
    *t0 = c.engine().now();
    co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                        .opcode = verbs::Opcode::kRdmaWrite,
                                        .sge = {s, n, lkey},
                                        .remote_addr = d,
                                        .rkey = rkey});
    co_await watch->wait();
    *t1 = c.engine().now();
  }(cluster, *qp0, src.addr(), dst.addr(), len, &start, &end));
  cluster.engine().run();

  const double span = static_cast<double>(end - start);
  auto pct = [span](Time busy) { return 100.0 * static_cast<double>(busy) / span; };

  std::printf("%s one-way 8 MB RDMA write (%.0f us):\n", network_name(network),
              to_us(end - start));
  if (network == Network::kIwarp) {
    std::printf("  sender tx engine      %5.1f%%   <- paper: engine-rate bound (~880 MB/s)\n",
                pct(cluster.rnic(0).tx_engine_busy_time()));
    std::printf("  sender PCI-X bus      %5.1f%%\n", pct(cluster.rnic(0).pcix_busy_time()));
    std::printf("  sender 10GbE link     %5.1f%%\n", pct(cluster.rnic(0).tx_link_busy_time()));
    std::printf("  receiver rx engine    %5.1f%%\n",
                pct(cluster.rnic(1).rx_engine_busy_time()));
    std::printf("  receiver PCI-X bus    %5.1f%%\n", pct(cluster.rnic(1).pcix_busy_time()));
  } else {
    std::printf("  sender IB link        %5.1f%%   <- paper: link bound (97%% of 1 GB/s)\n",
                pct(cluster.hca(0).tx_link_busy_time()));
    std::printf("  sender proc engine    %5.1f%%\n", pct(cluster.hca(0).proc_busy_time()));
    std::printf("  sender DMA engine     %5.1f%%\n", pct(cluster.hca(0).dma_busy_time()));
    std::printf("  receiver DMA engine   %5.1f%%\n", pct(cluster.hca(1).dma_busy_time()));
  }
  std::printf("\n");
}

void run_mx(Network network) {
  Cluster cluster(2, network);
  const std::uint32_t len = 8 << 20;
  auto& src = cluster.node(0).mem().alloc(len, false);
  auto& dst = cluster.node(1).mem().alloc(len, false);
  Time start = 0, end = 0;
  cluster.engine().spawn([](Cluster& c, std::uint64_t s, std::uint64_t d, std::uint32_t n,
                            Time* t0, Time* t1) -> Task<> {
    auto& ep0 = c.endpoint(0);
    auto& ep1 = c.endpoint(1);
    // Warmup pass pays the one-time pinning; the measured pass hits the
    // registration cache on both sides.
    {
      auto rx = co_await ep1.irecv(d, n, 1, ~0ull);
      auto tx = co_await ep0.isend(s, n, ep1.port(), 1);
      co_await ep1.wait(rx);
      co_await ep0.wait(tx);
    }
    auto rx = co_await ep1.irecv(d, n, 1, ~0ull);
    *t0 = c.engine().now();
    auto tx = co_await ep0.isend(s, n, ep1.port(), 1);
    co_await ep1.wait(rx);
    *t1 = c.engine().now();
    co_await ep0.wait(tx);
  }(cluster, src.addr(), dst.addr(), len, &start, &end));
  cluster.engine().run();

  // Busy counters include the warmup pass; both passes move the same
  // bytes, so halving them approximates the measured pass's share.
  const double span = static_cast<double>(end - start);
  auto pct = [span](Time busy) { return 100.0 * static_cast<double>(busy) / 2.0 / span; };
  std::printf("%s one-way 8 MB rendezvous (%.0f us):\n", network_name(network),
              to_us(end - start));
  std::printf("  sender PCIe x4 (read) %5.1f%%   <- paper: forced-x4 bound (<=75%% of 10G)\n",
              pct(cluster.node(0).pcie().read_busy_time()));
  std::printf("  sender NIC DMA engine %5.1f%%\n", pct(cluster.endpoint(0).dma_busy_time()));
  std::printf("  sender 10G link       %5.1f%%\n",
              pct(cluster.endpoint(0).tx_link_busy_time()));
  std::printf("  receiver NIC DMA      %5.1f%%\n", pct(cluster.endpoint(1).dma_busy_time()));
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Extension X11: resource utilization at saturation ===\n\n");
  run_verbs(Network::kIwarp);
  run_verbs(Network::kIb);
  run_mx(Network::kMxom);
  std::printf(
      "The resource DESIGN.md names as each network's bottleneck should sit\n"
      "near 100%% while everything else idles below it.\n");
  return 0;
}

// Figure 5: parameterized-LogP parameters g(m), Os(m), Or(m) measured
// with Kielmann's method on all four MPI stacks.
#include <cstdio>

#include "core/report.hpp"
#include "core/runners.hpp"

using namespace fabsim;
using namespace fabsim::core;

int main(int argc, char** argv) {
  const bool quick = argc > 1;
  const auto networks = {Network::kIwarp, Network::kIb, Network::kMxoe, Network::kMxom};
  std::printf("=== Figure 5: LogP parameters (paper Sec. 6.3) ===\n");

  Table gap("LogP gap g(m) (us)", "msg_bytes", {"iWARP", "IB", "MXoE", "MXoM"});
  Table os("LogP sender overhead Os(m) (us)", "msg_bytes", {"iWARP", "IB", "MXoE", "MXoM"});
  Table ores("LogP receiver overhead Or(m) (us)", "msg_bytes", {"iWARP", "IB", "MXoE", "MXoM"});
  for (std::uint32_t msg : pow2_sizes(1, quick ? 64 * 1024 : 1 << 20)) {
    std::vector<double> g, o_s, o_r;
    for (Network n : networks) {
      const LogpPoint point = logp_parameters(profile(n), msg, msg >= (1 << 19) ? 8 : 16);
      g.push_back(point.gap_us);
      o_s.push_back(point.os_us);
      o_r.push_back(point.or_us);
    }
    gap.add_row(msg, std::move(g));
    os.add_row(msg, std::move(o_s));
    ores.add_row(msg, std::move(o_r));
  }
  gap.print();
  os.print();
  ores.print();

  std::printf(
      "\nPaper reference shape: ~1 us overheads for very short messages; the\n"
      "receiver overhead jumps dramatically at the eager/rendezvous switch for\n"
      "iWARP and IB (the receiving process performs the rendezvous), but NOT\n"
      "for Myrinet (MX progresses large transfers autonomously).\n");
  return 0;
}

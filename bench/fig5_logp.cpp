// Figure 5: parameterized-LogP parameters g(m), Os(m), Or(m) measured
// with Kielmann's method on all four MPI stacks — plus the FabricScope
// cross-check: the same decomposition regenerated bottom-up from the
// engine's measured per-phase time attribution (host / NIC / wire),
// rather than from the protocol-level timing probes.
#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "core/runners.hpp"

using namespace fabsim;
using namespace fabsim::core;

int main(int argc, char**) {
  const bool quick = argc > 1;
  const auto networks = {Network::kIwarp, Network::kIb, Network::kMxoe, Network::kMxom};
  constexpr std::uint32_t kProbeMsg = 1024;
  std::printf("=== Figure 5: LogP parameters (paper Sec. 6.3) ===\n");

  Report report("fig5_logp");
  report.add_note("LogP g/Os/Or via Kielmann's method, all four MPI stacks");
  report.add_note("probe: Os/Or call-duration histograms + metrics at msg=1024B");
  report.add_note("breakdown tables: measured per-phase attribution (FabricScope), not closed form");

  Table gap("LogP gap g(m) (us)", "msg_bytes", {"iWARP", "IB", "MXoE", "MXoM"});
  Table os("LogP sender overhead Os(m) (us)", "msg_bytes", {"iWARP", "IB", "MXoE", "MXoM"});
  Table ores("LogP receiver overhead Or(m) (us)", "msg_bytes", {"iWARP", "IB", "MXoE", "MXoM"});
  for (std::uint32_t msg : pow2_sizes(1, quick ? 64 * 1024 : 1 << 20)) {
    std::vector<double> g, o_s, o_r;
    for (Network n : networks) {
      LogpPoint point;
      if (msg == kProbeMsg) {
        Histogram os_hist, or_hist;
        MetricRegistry metrics;
        point = logp_parameters(profile(n), msg, 16, &os_hist, &or_hist, &metrics);
        report.add_histogram(std::string(network_name(n)) + ".os_us", os_hist);
        report.add_histogram(std::string(network_name(n)) + ".or_us", or_hist);
        report.add_metrics(metrics, std::string(network_name(n)) + ".");
      } else {
        point = logp_parameters(profile(n), msg, msg >= (1 << 19) ? 8 : 16);
      }
      g.push_back(point.gap_us);
      o_s.push_back(point.os_us);
      o_r.push_back(point.or_us);
    }
    gap.add_row(msg, std::move(g));
    os.add_row(msg, std::move(o_s));
    ores.add_row(msg, std::move(o_r));
  }
  gap.print();
  os.print();
  ores.print();
  report.add_table(gap);
  report.add_table(os);
  report.add_table(ores);

  // Measured decomposition: where each ping-pong message's half-RTT went
  // according to the engine's phase attribution (host CPU vs DMA + NIC
  // engines vs serialization + propagation). The phases are busy-time
  // totals over both endpoints divided by the number of one-way
  // messages, so pipelined stages can overlap within the half-RTT.
  const std::vector<std::uint32_t> breakdown_sizes =
      quick ? std::vector<std::uint32_t>{64, 4096, 65536}
            : std::vector<std::uint32_t>{64, 1024, 4096, 16384, 65536, 262144};
  for (Network n : networks) {
    Table breakdown(std::string("Measured phase breakdown (us/message) — ") + network_name(n),
                    "msg_bytes", {"host", "nic", "wire", "half_rtt"});
    for (std::uint32_t msg : breakdown_sizes) {
      const PhaseBreakdown b = mpi_phase_breakdown(profile(n), msg, quick ? 12 : 24);
      breakdown.add_row(msg, {b.host_us, b.nic_us, b.wire_us, b.total_us});
    }
    breakdown.print();
    report.add_table(breakdown);
  }

  report.write();

  std::printf(
      "\nPaper reference shape: ~1 us overheads for very short messages; the\n"
      "receiver overhead jumps dramatically at the eager/rendezvous switch for\n"
      "iWARP and IB (the receiving process performs the rendezvous), but NOT\n"
      "for Myrinet (MX progresses large transfers autonomously).\n"
      "The measured breakdown shows the same story bottom-up: host time\n"
      "dominates short messages, wire+NIC time dominates large ones.\n");
  return 0;
}

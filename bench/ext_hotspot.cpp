// Extension X1 — hotspot test (the paper lists this among experiments
// omitted for space, Sec. 6). Three clients hammer rank 0 with
// fixed-size messages received via MPI_ANY_SOURCE; we report the
// aggregate message rate and per-message service latency at the hot rank
// as the client count grows.
#include <cstdio>
#include <vector>

#include "core/cluster.hpp"
#include "core/report.hpp"

using namespace fabsim;
using namespace fabsim::core;

namespace {

struct HotspotResult {
  double per_msg_us;
  double aggregate_mbps;
};

HotspotResult run(Network network, int clients, std::uint32_t msg, int msgs_per_client,
                  Histogram* hist = nullptr, MetricRegistry* metrics = nullptr) {
  Cluster cluster(clients + 1, network);
  if (metrics != nullptr) cluster.engine().set_metrics(metrics);
  std::vector<hw::Buffer*> bufs;
  for (int n = 0; n <= clients; ++n) {
    bufs.push_back(&cluster.node(n).mem().alloc(std::max(msg, 64u), false));
  }

  for (int c = 1; c <= clients; ++c) {
    cluster.engine().spawn([](Cluster& cl, int me, std::uint64_t addr, std::uint32_t m,
                              int count) -> Task<> {
      co_await cl.setup_mpi();
      auto& rank = cl.mpi_rank(me);
      for (int i = 0; i < count; ++i) {
        co_await rank.send(0, 7, addr, m);
      }
      // Final handshake so the server can stop cleanly.
      co_await rank.recv(0, 8, addr, 64);
    }(cluster, c, bufs[static_cast<std::size_t>(c)]->addr(), msg, msgs_per_client));
  }

  Time elapsed = 0;
  cluster.engine().spawn([](Cluster& cl, int nclients, std::uint64_t addr, std::uint64_t cap,
                            std::uint32_t m, int count, Time* out, Histogram* h) -> Task<> {
    co_await cl.setup_mpi();
    auto& rank = cl.mpi_rank(0);
    const Time start = cl.engine().now();
    for (int i = 0; i < nclients * count; ++i) {
      const Time recv_start = cl.engine().now();
      co_await rank.recv(mpi::kAnySource, 7, addr, cap);
      if (h != nullptr) h->add(to_us(cl.engine().now() - recv_start));
    }
    *out = cl.engine().now() - start;
    for (int c = 1; c <= nclients; ++c) {
      co_await rank.send(c, 8, addr, 1);
    }
    (void)m;
  }(cluster, clients, bufs[0]->addr(), bufs[0]->size(), msg, msgs_per_client, &elapsed, hist));
  cluster.engine().run();
  if (metrics != nullptr) cluster.collect_metrics(*metrics);

  const double total = static_cast<double>(clients) * msgs_per_client;
  return HotspotResult{to_us(elapsed) / total,
                       total * msg / to_us(elapsed)};
}

}  // namespace

int main() {
  const auto networks = {Network::kIwarp, Network::kIb, Network::kMxoe, Network::kMxom};
  // FabricScope probe: distribution of the hot rank's per-recv service
  // time (not just the mean) at the heaviest contention point.
  constexpr std::uint32_t kProbeMsg = 4096;
  constexpr int kProbeClients = 3;
  std::printf("=== Extension X1: hotspot (N clients -> 1 server) ===\n");

  Report report("ext_hotspot");
  report.add_note("N clients -> 1 server over MPI_ANY_SOURCE, per-message service time");
  report.add_note("probe: per-recv service-time histogram + metrics at clients=3 msg=4KB");

  for (std::uint32_t msg : {64u, 4096u, 65536u}) {
    std::vector<std::string> cols;
    for (Network n : networks) cols.push_back(network_name(n));
    Table lat("Per-message service time at the hot rank (us), msg=" + std::to_string(msg) + "B",
              "clients", cols);
    Table bw("Aggregate goodput at the hot rank (MB/s), msg=" + std::to_string(msg) + "B",
             "clients", cols);
    for (int clients : {1, 2, 3}) {
      std::vector<double> lrow, brow;
      for (Network n : networks) {
        HotspotResult r{};
        if (msg == kProbeMsg && clients == kProbeClients) {
          Histogram hist;
          MetricRegistry metrics;
          r = run(n, clients, msg, 60, &hist, &metrics);
          report.add_histogram(std::string(network_name(n)) + ".service_us", hist);
          report.add_metrics(metrics, std::string(network_name(n)) + ".");
        } else {
          r = run(n, clients, msg, 60);
        }
        lrow.push_back(r.per_msg_us);
        brow.push_back(r.aggregate_mbps);
      }
      lat.add_row(clients, std::move(lrow));
      bw.add_row(clients, std::move(brow));
    }
    lat.print();
    if (msg >= 4096) bw.print();
    report.add_table(lat);
    if (msg >= 4096) report.add_table(bw);
  }

  report.write();

  std::printf(
      "\nExpected shape: service time per message drops with more clients while\n"
      "the receiving host can keep up (arrival overlap), then flattens at the\n"
      "hot node's ceiling — its link for large messages, its MPI receive path\n"
      "for small ones.\n");
  return 0;
}

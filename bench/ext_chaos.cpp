// Extension X12 — FabricFail chaos soak: seeded failure schedules on
// multi-stage Clos fabrics, with every robustness gate armed at once.
//
// Each stack drives permutation + incast traffic over a routed Clos
// fabric while two kinds of failures land on it concurrently:
//
//   * detected failures — topo::Topology::schedule_link_down /
//     schedule_switch_down windows. The routing layer sees these: LFTs
//     recompute around the failed element (lft_epoch ticks), stranded
//     queues drain per flow-control mode (credit requeues, returning
//     every commitment; lossy drops and counts), and traffic reroutes.
//   * undetected failures — FaultPlan::seeded_link_flaps windows. The
//     routing layer does NOT see these; frames silently die on one
//     directed link and only the per-stack recovery machinery (iWARP
//     go-back-N, IB RC retransmission, MX resend queue) repairs the
//     damage — or gives up through its retry limit.
//
// The gate, all of which must hold for exit code 0:
//   1. FabricCheck clean: zero invariant violations with the auditor
//      armed (per-hop conservation, credit conservation across down/up
//      cycles, queue drainage at quiescence).
//   2. Determinism: each scenario runs twice from the same seed and the
//      two sim.digest values must be identical (the iWARP scenario runs
//      a third repeat, so one bench invocation checks three digests).
//   3. No silent hangs: at quiescence every flow either recovered
//      (all chunks delivered) or failed *visibly* — kRetryExceeded /
//      connection error for the verbs stacks, Request::failed() or an
//      mx_cancel for MX. A flow still pending once the event queue
//      drains is a stack bug.
//
// Results land in results/ext_chaos{,_quick}.{txt,csv,json}; the
// chaos-smoke CI job runs `ext_chaos quick` under FABSIM_CHECK and
// scripts/chaos_soak.sh sweeps seeds for the long-form soak.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/cluster.hpp"
#include "core/report.hpp"
#include "fault/plan.hpp"

using namespace fabsim;
using namespace fabsim::core;

namespace {

struct Outcome {
  bool done = false;    ///< flow resolved (success or surfaced failure)
  bool failed = false;  ///< resolved by a surfaced error, not delivery
  bool cancelled = false;
};

struct ChaosStats {
  std::uint64_t digest = 0;
  int recovered = 0;
  int surfaced = 0;   ///< failed visibly (error completion / failed request)
  int cancelled = 0;  ///< MX receives unblocked via mx_cancel
  int hung = 0;       ///< neither — the gate breaker
  std::uint64_t violations = 0;
  int lft_epochs = 0;
  std::uint64_t down_drops = 0;
  std::uint64_t unroutable_drops = 0;
  std::uint64_t tail_drops = 0;
  std::uint64_t fault_drops = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t give_ups = 0;  ///< retry_exceeded / conn_errors / flow_failures
};

struct Pattern {
  std::vector<std::pair<int, int>> flows;
};

Pattern chaos_pattern(int endpoints, int incast_senders) {
  Pattern p;
  for (int n = 0; n < endpoints; ++n) p.flows.emplace_back(n, (n + endpoints / 2) % endpoints);
  for (int s = 1; s <= incast_senders; ++s) p.flows.emplace_back(s, 0);
  return p;
}

constexpr Time kPollCpu = ns(250);

/// One chaos scenario: `pattern` over a Clos fabric with a seeded
/// failure schedule (detected windows through the topology, undetected
/// flaps through the fault plan), FabricCheck armed throughout.
/// With `partition` set the schedule is instead one permanent silent
/// outage of node 0's edge switch — longer than every stack's retry
/// budget, so the flows touching node 0 MUST exhaust retries and fail
/// visibly (kRetryExceeded / MX flow failure) while the rest recover.
ChaosStats run(Network network, const topo::FabricSpec& spec, int endpoints,
               const Pattern& pattern, std::uint32_t chunk, int chunks, std::uint64_t seed,
               bool quick, bool partition = false, MetricRegistry* metrics_out = nullptr) {
  NetworkProfile p = profile(network);
  const hw::FlowControl link_layer = p.fabric.flow;
  p.fabric = spec;
  p.fabric.flow = link_layer;
  p.switch_cfg.max_queue_bytes = 32ull << 10;
  p.rnic.rto = us(300);  // keep go-back-N rounds short at this scale
  p.mx.rto = us(150);
  Cluster cluster(endpoints, p);
  check::InvariantMonitor& monitor = cluster.enable_checks(/*fatal=*/false);
  MetricRegistry registry;
  cluster.engine().set_metrics(&registry);

  // --- Seeded failure schedule -----------------------------------------
  // A private xorshift64 stream makes the schedule a pure function of the
  // seed; the FaultPlan's own PRNG handles the undetected flaps.
  std::uint64_t x = seed ? seed : 1;
  auto rnd = [&x]() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };

  topo::Topology& topo = cluster.topology();
  const auto& links = topo.links();
  fault::FaultPlan plan(seed);
  if (partition) {
    // Node 0's edge switch dies silently at t=0 and stays dead longer
    // than any stack's retry budget (MX's backoff sums to ~75ms, the
    // longest). Nothing in or out of node 0 can ever be delivered, so
    // every flow touching it must surface a failure; everything else
    // runs on an otherwise healthy fabric and must complete untouched.
    plan.switch_down(topo.edge_index_of(0), us(0), ms(500));
  } else if (!links.empty()) {
    // Detected: link-down/up windows the routing layer reroutes around.
    const int detected = quick ? 2 : 4;
    for (int i = 0; i < detected; ++i) {
      const int link = static_cast<int>(rnd() % links.size());
      const Time start = us(200 + static_cast<double>(rnd() % 1200));
      const Time down_for = us(150 + static_cast<double>(rnd() % 400));
      topo.schedule_link_down(link, start, start + down_for);
    }
    // Detected: one whole-switch outage, never an edge switch (killing a
    // host's only attachment point is a different experiment).
    std::vector<int> core;
    for (int s = 0; s < static_cast<int>(topo.num_switches()); ++s) {
      bool is_edge = false;
      for (int n = 0; n < endpoints; ++n) is_edge |= topo.edge_index_of(n) == s;
      if (!is_edge) core.push_back(s);
    }
    if (!core.empty()) {
      const int victim = core[rnd() % core.size()];
      const Time start = us(1500 + static_cast<double>(rnd() % 500));
      topo.schedule_switch_down(victim, start, start + us(600));
    }
    // Undetected: silent one-directional flaps only the stacks repair.
    std::vector<fault::FaultPlan::Link> directed;
    for (const topo::Topology::LinkRec& l : links) {
      directed.push_back({l.a, l.port_a});
      directed.push_back({l.b, l.port_b});
    }
    plan.seeded_link_flaps(seed ^ 0x9e3779b97f4a7c15ull, directed, quick ? 2 : 5, us(100),
                           ms(2), us(50), us(250));
  } else {
    plan.drop_probability(0.001);  // single crossbar fallback: keep the plan armed
  }
  cluster.engine().set_fault_injector(&plan);

  // --- Load -------------------------------------------------------------
  std::vector<std::unique_ptr<Outcome>> outcomes;
  std::vector<std::unique_ptr<verbs::CompletionQueue>> cqs;
  std::vector<std::unique_ptr<verbs::QueuePair>> qps;
  struct MxFlow {
    Outcome* send = nullptr;
    Outcome* recv = nullptr;
    int dst = -1;
    mx::RequestPtr current_recv;
  };
  std::vector<std::unique_ptr<MxFlow>> mx_flows;

  for (std::size_t f = 0; f < pattern.flows.size(); ++f) {
    const auto [src, dst] = pattern.flows[f];
    auto& src_buf = cluster.node(src).mem().alloc(chunk, false);
    auto& dst_buf = cluster.node(dst).mem().alloc(chunk, false);
    if (cluster.is_verbs()) {
      outcomes.push_back(std::make_unique<Outcome>());
      Outcome* out = outcomes.back().get();
      cqs.push_back(std::make_unique<verbs::CompletionQueue>(cluster.engine()));
      verbs::CompletionQueue& cq = *cqs.back();
      auto dst_qp = cluster.device(dst).create_qp(cq, cq);
      auto src_qp = cluster.device(src).create_qp(cq, cq);
      cluster.device(dst).establish(*dst_qp, *src_qp);
      cluster.engine().spawn([](Cluster& cl, verbs::QueuePair& qp, verbs::CompletionQueue& wcq,
                                int s, int d, std::uint64_t saddr, std::uint64_t daddr,
                                std::uint32_t n, int count, Outcome* res) -> Task<> {
        auto lkey = co_await cl.device(s).reg_mr(saddr, n);
        auto rkey = co_await cl.device(d).reg_mr(daddr, n);
        for (int i = 0; i < count; ++i) {
          if (qp.in_error()) {
            res->failed = true;
            break;
          }
          bool posted = true;
          try {
            co_await qp.post_send(verbs::SendWr{.wr_id = static_cast<std::uint64_t>(i + 1),
                                                .opcode = verbs::Opcode::kRdmaWrite,
                                                .sge = {saddr, n, lkey},
                                                .remote_addr = daddr,
                                                .rkey = rkey});
          } catch (const std::runtime_error&) {
            posted = false;  // QP entered error between the check and the post
          }
          if (!posted) {
            res->failed = true;
            break;
          }
          const verbs::Completion completion =
              co_await verbs::next_completion(wcq, cl.node(s).cpu(), kPollCpu);
          if (completion.status != verbs::Completion::Status::kSuccess) {
            res->failed = true;
            break;
          }
        }
        res->done = true;
      }(cluster, *src_qp, cq, src, dst, src_buf.addr(), dst_buf.addr(), chunk, chunks, out));
      qps.push_back(std::move(dst_qp));
      qps.push_back(std::move(src_qp));
    } else {
      mx_flows.push_back(std::make_unique<MxFlow>());
      MxFlow* flow = mx_flows.back().get();
      outcomes.push_back(std::make_unique<Outcome>());
      flow->send = outcomes.back().get();
      outcomes.push_back(std::make_unique<Outcome>());
      flow->recv = outcomes.back().get();
      flow->dst = dst;
      const std::uint64_t match = 0x2000 + f;
      cluster.engine().spawn([](Cluster& cl, int s, int d, std::uint64_t saddr, std::uint32_t n,
                                int count, std::uint64_t bits, Outcome* res) -> Task<> {
        for (int i = 0; i < count; ++i) {
          auto req = co_await cl.endpoint(s).isend(saddr, n, cl.endpoint(d).port(), bits);
          co_await cl.endpoint(s).wait(req);
          if (req->failed()) {
            res->failed = true;
            break;
          }
        }
        res->done = true;
      }(cluster, src, dst, src_buf.addr(), chunk, chunks, match, flow->send));
      cluster.engine().spawn([](Cluster& cl, MxFlow* fl, std::uint64_t daddr, std::uint32_t n,
                                int count, std::uint64_t bits) -> Task<> {
        for (int i = 0; i < count; ++i) {
          auto req = co_await cl.endpoint(fl->dst).irecv(daddr, n, bits, ~0ull);
          fl->current_recv = req;
          co_await cl.endpoint(fl->dst).wait(req);
          if (req->failed()) {
            fl->recv->failed = true;
            break;
          }
        }
        fl->recv->done = true;
      }(cluster, flow, dst_buf.addr(), chunk, chunks, match));
    }
  }

  // MX receives stranded by a silently-dead sender never match, and a
  // coroutine suspended forever is exactly what the lost-wakeup audit
  // flags at quiescence. The application-level remedy is a bounded wait:
  // a watchdog past every stack's retry budget (MX's backoff sums to
  // ~75ms, the longest) that mx_cancels whatever is still pending.
  if (!mx_flows.empty()) {
    std::vector<MxFlow*> watch;
    watch.reserve(mx_flows.size());
    for (const auto& flow : mx_flows) watch.push_back(flow.get());
    Cluster* cl = &cluster;
    cluster.engine().post(ms(100), [cl, watch] {
      for (MxFlow* fl : watch) {
        if (!fl->recv->done && fl->current_recv != nullptr && !fl->current_recv->done()) {
          fl->recv->cancelled = true;
          cl->engine().spawn([](Cluster& c, MxFlow* f) -> Task<> {
            co_await c.endpoint(f->dst).cancel(f->current_recv);
          }(*cl, fl));
        }
      }
    });
  }

  cluster.engine().run();

  // iWARP tagged writes complete optimistically at the wire handoff
  // (TCP send-buffer semantics), so a sender whose connection later
  // died can have seen nothing but successful completions. At
  // quiescence the application observes connection state: a flow whose
  // QP sits in error did NOT recover, whatever its completions said.
  for (std::size_t f = 0; f < qps.size() / 2; ++f) {
    verbs::QueuePair& src_qp = *qps[2 * f + 1];
    if (src_qp.in_error() && !outcomes[f]->failed) outcomes[f]->failed = true;
  }

  cluster.collect_metrics(registry);
  for (const auto& v : monitor.violations())
    std::fprintf(stderr, "violation: %s\n", v.to_string().c_str());

  ChaosStats stats;
  stats.digest = cluster.engine().run_digest();
  for (const auto& out : outcomes) {
    if (!out->done) {
      ++stats.hung;
    } else if (out->failed) {
      ++stats.surfaced;
      if (out->cancelled) ++stats.cancelled;
    } else {
      ++stats.recovered;
    }
  }
  stats.violations = registry.counter_value("check.violations");
  stats.lft_epochs = topo.lft_epoch();
  stats.down_drops = topo.down_drops_total();
  stats.unroutable_drops = topo.unroutable_drops_total();
  stats.tail_drops = topo.tail_drops_total();
  stats.fault_drops = topo.fault_drops_total();
  for (int n = 0; n < endpoints; ++n) {
    const std::string node = "node" + std::to_string(n);
    stats.retransmits += registry.counter_value("iwarp." + node + ".retransmits");
    stats.retransmits += registry.counter_value("ib." + node + ".retransmits");
    stats.retransmits += registry.counter_value("mx." + node + ".resends");
    stats.give_ups += registry.counter_value("iwarp." + node + ".conn_errors");
    stats.give_ups += registry.counter_value("ib." + node + ".retry_exceeded");
    stats.give_ups += registry.counter_value("mx." + node + ".flow_failures");
  }
  if (metrics_out != nullptr) *metrics_out = registry;
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::uint64_t seed = 7;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "quick") {
      quick = true;
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  std::printf("=== Extension X12: chaos soak on failing Clos fabrics (%s, seed %llu) ===\n",
              quick ? "quick" : "full", static_cast<unsigned long long>(seed));

  const topo::FabricSpec spec = quick ? topo::FabricSpec{2, 8, 1.0} : topo::FabricSpec{3, 8, 1.0};
  const int endpoints = quick ? 16 : 128;
  const int incast_senders = quick ? 4 : 8;
  const std::uint32_t chunk = 64 * 1024;
  const int chunks = quick ? 2 : 4;
  const Pattern pattern = chaos_pattern(endpoints, incast_senders);
  const auto networks = {Network::kIwarp, Network::kIb, Network::kMxoe};

  Report report(quick ? "ext_chaos_quick" : "ext_chaos");
  report.add_note("seeded chaos: detected link/switch-down windows (LFT reroute) + silent flaps");
  report.add_note("gate: zero FabricCheck violations, identical digests, no silent hangs");
  report.add_note("phase 2: node-0 edge switch silently partitioned; surfaced > 0 required");
  report.add_note("flows table x: 0=iWARP 1=IB 2=MXoE");
  report.add_scalar("seed", static_cast<double>(seed));
  report.add_scalar("endpoints", endpoints);
  report.add_scalar("flows", static_cast<double>(pattern.flows.size()));

  Table flows_table("Flow outcomes per stack (gate: hung == 0)", "stack",
                    {"recovered", "surfaced", "cancelled", "hung"});
  Table fabric_table("Fabric failure accounting", "stack",
                     {"lft_epochs", "down_drops", "unroutable", "tail_drops", "fault_drops",
                      "retransmits", "give_ups"});

  int failures = 0;
  int stack_index = 0;
  for (Network n : networks) {
    MetricRegistry metrics;
    const ChaosStats s1 = run(n, spec, endpoints, pattern, chunk, chunks, seed, quick,
                              /*partition=*/false, &metrics);
    const ChaosStats s2 = run(n, spec, endpoints, pattern, chunk, chunks, seed, quick);
    int repeats = 2;
    bool digests_match = s1.digest == s2.digest;
    if (n == Network::kIwarp) {
      // Third repeat: one invocation of this bench certifies three
      // identical digests for the same seed on the probe stack.
      const ChaosStats s3 = run(n, spec, endpoints, pattern, chunk, chunks, seed, quick);
      digests_match = digests_match && s1.digest == s3.digest;
      repeats = 3;
    }
    std::printf("%-6s recovered=%d surfaced=%d cancelled=%d hung=%d violations=%llu "
                "epochs=%d digest(x%d)=%s\n",
                network_name(n), s1.recovered, s1.surfaced, s1.cancelled, s1.hung,
                static_cast<unsigned long long>(s1.violations), s1.lft_epochs, repeats,
                digests_match ? "identical" : "MISMATCH");
    if (s1.violations != 0) {
      std::fprintf(stderr, "GATE: %s recorded %llu FabricCheck violations\n", network_name(n),
                   static_cast<unsigned long long>(s1.violations));
      ++failures;
    }
    if (s1.hung != 0) {
      std::fprintf(stderr, "GATE: %s left %d flows silently hung\n", network_name(n), s1.hung);
      ++failures;
    }
    if (!digests_match) {
      std::fprintf(stderr, "GATE: %s digests diverged across identical seeded runs\n",
                   network_name(n));
      ++failures;
    }
    flows_table.add_row(stack_index, {static_cast<double>(s1.recovered),
                                      static_cast<double>(s1.surfaced),
                                      static_cast<double>(s1.cancelled),
                                      static_cast<double>(s1.hung)});
    fabric_table.add_row(stack_index, {static_cast<double>(s1.lft_epochs),
                                       static_cast<double>(s1.down_drops),
                                       static_cast<double>(s1.unroutable_drops),
                                       static_cast<double>(s1.tail_drops),
                                       static_cast<double>(s1.fault_drops),
                                       static_cast<double>(s1.retransmits),
                                       static_cast<double>(s1.give_ups)});
    report.add_metrics_if(metrics, std::string(network_name(n)) + ".", Report::aggregate_key);
    ++stack_index;
  }
  // --- Phase 2: permanent partition ------------------------------------
  // The chaos windows above are short enough that every stack recovers,
  // so the retry-exhaustion machinery never fires. This phase proves the
  // "no silent hangs" gate has teeth on the failure side too: node 0's
  // edge switch is silently dead for the whole run, every flow touching
  // it must fail *visibly* (kRetryExceeded completion, MX flow failure,
  // or an mx_cancel of a stranded receive), and nothing may hang.
  Table partition_table("Partition outcomes per stack (gate: hung == 0, surfaced > 0)", "stack",
                        {"recovered", "surfaced", "cancelled", "hung", "give_ups"});
  stack_index = 0;
  for (Network n : networks) {
    const ChaosStats s = run(n, spec, endpoints, pattern, chunk, chunks, seed, quick,
                             /*partition=*/true);
    std::printf("%-6s partition: recovered=%d surfaced=%d cancelled=%d hung=%d "
                "violations=%llu give_ups=%llu\n",
                network_name(n), s.recovered, s.surfaced, s.cancelled, s.hung,
                static_cast<unsigned long long>(s.violations),
                static_cast<unsigned long long>(s.give_ups));
    if (s.violations != 0) {
      std::fprintf(stderr, "GATE: %s partition recorded %llu FabricCheck violations\n",
                   network_name(n), static_cast<unsigned long long>(s.violations));
      ++failures;
    }
    if (s.hung != 0) {
      std::fprintf(stderr, "GATE: %s partition left %d flows silently hung\n", network_name(n),
                   s.hung);
      ++failures;
    }
    if (s.surfaced == 0) {
      std::fprintf(stderr,
                   "GATE: %s partition surfaced no failures — retry exhaustion never fired\n",
                   network_name(n));
      ++failures;
    }
    partition_table.add_row(stack_index,
                            {static_cast<double>(s.recovered), static_cast<double>(s.surfaced),
                             static_cast<double>(s.cancelled), static_cast<double>(s.hung),
                             static_cast<double>(s.give_ups)});
    ++stack_index;
  }

  flows_table.print();
  fabric_table.print();
  partition_table.print();
  report.add_table(flows_table);
  report.add_table(fabric_table);
  report.add_table(partition_table);
  report.write();

  if (failures != 0) {
    std::fprintf(stderr, "\nchaos gate: %d failure(s)\n", failures);
    return 1;
  }
  std::printf(
      "\nchaos gate: clean. Detected failures rerouted (LFT epochs above),\n"
      "undetected flaps were repaired by per-stack recovery, and every flow\n"
      "that could not recover failed visibly instead of hanging.\n");
  return 0;
}

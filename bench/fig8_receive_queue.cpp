// Figure 8: effect of the receive (posted) queue on latency. Both sides
// pre-post `depth` receives with a never-yet-matched tag; every measured
// ping-pong message must traverse them before reaching its own receive.
// Reported: ratio of loaded-queue latency to empty-queue latency.
#include <cstdio>

#include "core/report.hpp"
#include "core/runners.hpp"

using namespace fabsim;
using namespace fabsim::core;

int main(int argc, char**) {
  const bool quick = argc > 1;
  const auto networks = {Network::kIwarp, Network::kIb, Network::kMxoe, Network::kMxom};
  std::printf("=== Figure 8: receive-queue effect (paper Sec. 6.5.2) ===\n");

  const std::vector<int> depths = quick ? std::vector<int>{64, 256} :
                                          std::vector<int>{16, 64, 128, 256, 512};
  // FabricScope probe configuration (present in both depth sweeps).
  constexpr std::uint32_t kProbeMsg = 1024;
  constexpr int kProbeDepth = 256;

  Report report("fig8_receive_queue");
  report.add_note("receive (posted) queue effect: loaded/empty latency ratio");
  report.add_note("probe: loaded half-RTT histogram + metrics at msg=1024B depth=256");

  for (std::uint32_t msg : {16u, 256u, 1024u, 8192u, 32768u, 131072u}) {
    std::vector<std::string> cols;
    for (Network n : networks) cols.push_back(network_name(n));
    Table ratio("Loaded/empty latency ratio, msg=" + std::to_string(msg) + "B",
                "queue_depth", cols);
    std::vector<double> base;
    for (Network n : networks) {
      base.push_back(recv_queue_latency_us(profile(n), msg, 0));
    }
    for (int depth : depths) {
      std::vector<double> row;
      int i = 0;
      for (Network n : networks) {
        double loaded = 0;
        if (msg == kProbeMsg && depth == kProbeDepth) {
          Histogram hist;
          MetricRegistry metrics;
          loaded = recv_queue_latency_us(profile(n), msg, depth, 16, &hist, &metrics);
          report.add_histogram(std::string(network_name(n)) + ".loaded_latency_us", hist);
          report.add_metrics(metrics, std::string(network_name(n)) + ".");
        } else {
          loaded = recv_queue_latency_us(profile(n), msg, depth);
        }
        row.push_back(loaded / base[static_cast<std::size_t>(i++)]);
      }
      ratio.add_row(depth, std::move(row));
    }
    ratio.print();
    report.add_table(ratio);
  }

  report.write();

  std::printf(
      "\nPaper reference shape: the receive-queue impact is more than twice the\n"
      "unexpected-queue impact for small messages; the iWARP MPI is best (max\n"
      "ratio ~2.5 per the paper's conclusions), Myrinet is the worst network\n"
      "here — MX's NIC-resident traversal of early-posted receives is slow.\n");
  return 0;
}

// Extension X4 — ablation of the two Figure-2 mechanisms:
//  (a) disable the iWARP RNIC's pipelining (initiation interval ==
//      latency, i.e. a processor-based engine): its multi-connection
//      scaling must collapse to IB-like behaviour;
//  (b) sweep the IB HCA's QP-context cache size: the serialization knee
//      must track the cache capacity.
#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "core/runners.hpp"

using namespace fabsim;
using namespace fabsim::core;

int main() {
  std::printf("=== Extension X4: engine-architecture ablations (Fig 2 mechanisms) ===\n");
  // Probe past both knees: deep enough that the ablated engines have
  // visibly serialized and the context cache is thrashing.
  constexpr int kProbeConns = 32;

  Report report("ext_ablation_engine");
  report.add_note("Fig 2 mechanism ablations: RNIC pipelining off, HCA context-cache sweep");
  report.add_note("probe: per-round latency histograms + metrics at conns=32 msg=1KB");

  {
    NetworkProfile piped = iwarp_profile();
    NetworkProfile serial = iwarp_profile();
    // Processor-based variant: a segment occupies the engine for its full
    // processing latency.
    serial.rnic.tx_occupancy = serial.rnic.tx_latency;
    serial.rnic.rx_occupancy = serial.rnic.rx_latency;

    Table table("iWARP normalized multi-conn latency (us), 1 KB messages", "connections",
                {"pipelined (real)", "processor-based (ablated)"});
    for (int c : {1, 2, 4, 8, 16, 32, 64}) {
      if (c == kProbeConns) {
        Histogram piped_hist, serial_hist;
        MetricRegistry metrics;
        table.add_row(c,
                      {multiconn_normalized_latency_us(piped, c, 1024, 16, &piped_hist, &metrics),
                       multiconn_normalized_latency_us(serial, c, 1024, 16, &serial_hist)});
        report.add_histogram("iwarp_pipelined.norm_latency_us", piped_hist);
        report.add_histogram("iwarp_serial.norm_latency_us", serial_hist);
        report.add_metrics(metrics, "iwarp_pipelined.");
      } else {
        table.add_row(c, {multiconn_normalized_latency_us(piped, c, 1024),
                          multiconn_normalized_latency_us(serial, c, 1024)});
      }
    }
    table.print();
    report.add_table(table);
  }

  {
    std::vector<int> cache_sizes = {2, 8, 32};
    std::vector<std::string> cols;
    for (int s : cache_sizes) cols.push_back("cache=" + std::to_string(s));
    Table table("IB normalized multi-conn latency (us), 1 KB messages", "connections", cols);
    for (int c : {1, 2, 4, 8, 16, 32, 64}) {
      std::vector<double> row;
      for (int s : cache_sizes) {
        NetworkProfile p = ib_profile();
        p.hca.context_cache_entries = s;
        if (c == kProbeConns && s == 2) {
          // The thrash case: context_hits/misses in the metric dump show
          // the cache-serialization mechanism directly.
          Histogram hist;
          MetricRegistry metrics;
          row.push_back(multiconn_normalized_latency_us(p, c, 1024, 16, &hist, &metrics));
          report.add_histogram("ib_cache2.norm_latency_us", hist);
          report.add_metrics(metrics, "ib_cache2.");
        } else {
          row.push_back(multiconn_normalized_latency_us(p, c, 1024));
        }
      }
      table.add_row(c, std::move(row));
    }
    table.print();
    report.add_table(table);
  }

  report.write();

  std::printf(
      "\nExpected shape: (a) the ablated iWARP engine stops improving once the\n"
      "serial engine saturates — the pipelined design is what buys Figure 2's\n"
      "scaling; (b) IB's knee sits right after its context-cache size: a\n"
      "2-entry cache serializes at 4 connections, a 32-entry cache pushes the\n"
      "knee past 32.\n");
  return 0;
}

// Extension X4 — ablation of the two Figure-2 mechanisms:
//  (a) disable the iWARP RNIC's pipelining (initiation interval ==
//      latency, i.e. a processor-based engine): its multi-connection
//      scaling must collapse to IB-like behaviour;
//  (b) sweep the IB HCA's QP-context cache size: the serialization knee
//      must track the cache capacity.
#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "core/runners.hpp"

using namespace fabsim;
using namespace fabsim::core;

int main() {
  std::printf("=== Extension X4: engine-architecture ablations (Fig 2 mechanisms) ===\n");

  {
    NetworkProfile piped = iwarp_profile();
    NetworkProfile serial = iwarp_profile();
    // Processor-based variant: a segment occupies the engine for its full
    // processing latency.
    serial.rnic.tx_occupancy = serial.rnic.tx_latency;
    serial.rnic.rx_occupancy = serial.rnic.rx_latency;

    Table table("iWARP normalized multi-conn latency (us), 1 KB messages", "connections",
                {"pipelined (real)", "processor-based (ablated)"});
    for (int c : {1, 2, 4, 8, 16, 32, 64}) {
      table.add_row(c, {multiconn_normalized_latency_us(piped, c, 1024),
                        multiconn_normalized_latency_us(serial, c, 1024)});
    }
    table.print();
  }

  {
    std::vector<int> cache_sizes = {2, 8, 32};
    std::vector<std::string> cols;
    for (int s : cache_sizes) cols.push_back("cache=" + std::to_string(s));
    Table table("IB normalized multi-conn latency (us), 1 KB messages", "connections", cols);
    for (int c : {1, 2, 4, 8, 16, 32, 64}) {
      std::vector<double> row;
      for (int s : cache_sizes) {
        NetworkProfile p = ib_profile();
        p.hca.context_cache_entries = s;
        row.push_back(multiconn_normalized_latency_us(p, c, 1024));
      }
      table.add_row(c, std::move(row));
    }
    table.print();
  }

  std::printf(
      "\nExpected shape: (a) the ablated iWARP engine stops improving once the\n"
      "serial engine saturates — the pipelined design is what buys Figure 2's\n"
      "scaling; (b) IB's knee sits right after its context-cache size: a\n"
      "2-entry cache serializes at 4 connections, a 32-entry cache pushes the\n"
      "knee past 32.\n");
  return 0;
}

// google-benchmark microbenchmarks of the simulation core itself:
// event throughput, coroutine context switches, resource booking, and a
// full iWARP RDMA-write transfer as an end-to-end figure of merit.
//
// The *Profiled variants re-run a workload with a FabricProf profiler
// attached: the events/sec delta against the detached twin is the
// measured profiler overhead, and the prof_* counters surface where the
// host time and heap churn go (scripts/bench_engine.py records both
// sides in the BENCH_engine.json trajectory).
#include <benchmark/benchmark.h>

#include "core/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/prof.hpp"
#include "sim/resource.hpp"
#include "sim/sync.hpp"

namespace {

using namespace fabsim;

/// Publish the engine's own processed-event count as a wall-clock rate:
/// scripts/bench_engine.py scrapes "events_per_sec" into the
/// BENCH_engine.json perf trajectory.
void report_event_rate(benchmark::State& state, std::uint64_t events) {
  state.counters["events_per_sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}

void BM_EventQueueThroughput(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    Engine engine;
    std::uint64_t sink = 0;
    for (int i = 0; i < 10000; ++i) {
      engine.post(static_cast<Time>(i), [&sink, i] { sink += static_cast<std::uint64_t>(i); });
    }
    engine.run();
    benchmark::DoNotOptimize(sink);
    events += engine.events_processed();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
  report_event_rate(state, events);
}
BENCHMARK(BM_EventQueueThroughput);

void BM_CoroutineSleepChain(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    Engine engine;
    engine.spawn([](Engine& e) -> Task<> {
      for (int i = 0; i < 10000; ++i) co_await e.sleep(ns(10));
    }(engine));
    engine.run();
    events += engine.events_processed();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
  report_event_rate(state, events);
}
BENCHMARK(BM_CoroutineSleepChain);

void BM_MailboxPingPong(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    Engine engine;
    Mailbox<int> a(engine), b(engine);
    engine.spawn([](Mailbox<int>& rx, Mailbox<int>& tx) -> Task<> {
      for (int i = 0; i < 5000; ++i) {
        tx.send(i);
        co_await rx.recv();
      }
    }(a, b));
    engine.spawn([](Mailbox<int>& rx, Mailbox<int>& tx) -> Task<> {
      for (int i = 0; i < 5000; ++i) {
        const int v = co_await rx.recv();
        tx.send(v);
      }
    }(b, a));
    engine.run();
    events += engine.events_processed();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
  report_event_rate(state, events);
}
BENCHMARK(BM_MailboxPingPong);

/// BM_EventQueueThroughput with the profiler attached (1-in-16 clock
/// sampling, no slice retention): the events/sec gap to the detached
/// twin is the attached-profiler cost, and the prof_* counters give the
/// hot-spot breakdown per event — host ns in dispatch, binary-heap
/// work, and allocator traffic on the queue storage.
void BM_EventQueueThroughputProfiled(benchmark::State& state) {
  std::uint64_t events = 0;
  Profiler profiler(Profiler::Config{.sample_stride = 16, .max_slices = 0});
  for (auto _ : state) {
    Engine engine;
    engine.set_profiler(&profiler);
    std::uint64_t sink = 0;
    for (int i = 0; i < 10000; ++i) {
      engine.post(static_cast<Time>(i), [&sink, i] { sink += static_cast<std::uint64_t>(i); });
    }
    engine.run();
    benchmark::DoNotOptimize(sink);
    events += engine.events_processed();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
  report_event_rate(state, events);
  if (profiler.sampled_dispatches() > 0) {
    state.counters["prof_dispatch_ns_per_event"] =
        static_cast<double>(profiler.sampled_dispatch_ns()) /
        static_cast<double>(profiler.sampled_dispatches());
  }
  if (profiler.events_dispatched() > 0) {
    const auto per_event = [&](double v) {
      return v / static_cast<double>(profiler.events_dispatched());
    };
    state.counters["prof_heapify_cost_per_event"] =
        per_event(static_cast<double>(profiler.heapify_cost()));
    state.counters["prof_alloc_bytes_per_event"] =
        per_event(static_cast<double>(profiler.alloc_delta().bytes_allocated));
  }
  state.counters["prof_queue_peak_depth"] = static_cast<double>(profiler.peak_depth());
  // The zero-allocation dispatch contract, as a bench counter: tracked
  // allocations per dispatched event with amortized queue growth
  // excluded. Must read 0.0 after the InplaceFn payload rework.
  state.counters["prof_alloc_allocs_per_event"] = profiler.allocs_per_event();
}
BENCHMARK(BM_EventQueueThroughputProfiled);

void BM_SerialServerBooking(benchmark::State& state) {
  SerialServer server;
  Time now = 0;
  for (auto _ : state) {
    now = server.book(now, ns(100));
    benchmark::DoNotOptimize(now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SerialServerBooking);

void BM_IwarpRdmaWrite64K(benchmark::State& state) {
  using namespace fabsim::core;
  std::uint64_t events = 0;
  for (auto _ : state) {
    Cluster cluster(2, Network::kIwarp);
    verbs::CompletionQueue cq0(cluster.engine()), cq1(cluster.engine());
    auto qp0 = cluster.device(0).create_qp(cq0, cq0);
    auto qp1 = cluster.device(1).create_qp(cq1, cq1);
    cluster.device(0).establish(*qp0, *qp1);
    auto& src = cluster.node(0).mem().alloc(65536, false);
    auto& dst = cluster.node(1).mem().alloc(65536, false);
    auto k0 = cluster.device(0).registry().register_region(src.addr(), 65536);
    auto k1 = cluster.device(1).registry().register_region(dst.addr(), 65536);
    cluster.engine().spawn([](Cluster& c, verbs::QueuePair& qp, hw::Buffer& s, hw::Buffer& d,
                              verbs::MrKey lk, verbs::MrKey rk) -> Task<> {
      auto watch = c.device(1).watch_placement(d.addr(), 65536);
      co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                          .opcode = verbs::Opcode::kRdmaWrite,
                                          .sge = {s.addr(), 65536, lk},
                                          .remote_addr = d.addr(),
                                          .rkey = rk});
      co_await watch->wait();
    }(cluster, *qp0, src, dst, k0, k1));
    cluster.engine().run();
    events += cluster.engine().events_processed();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * 65536);
  report_event_rate(state, events);
}
BENCHMARK(BM_IwarpRdmaWrite64K);

}  // namespace

BENCHMARK_MAIN();

// Extension X6 — host-based TCP sockets vs. the offloaded stacks on the
// same 10GbE wire (the paper's future-work item "extend our study to
// include ... sockets"). This is the quantitative version of the paper's
// framing sentence: iWARP achieves "an unprecedented (TCP) latency for
// Ethernet" — unprecedented relative to this baseline.
#include <cstdio>
#include <memory>

#include "core/report.hpp"
#include "core/runners.hpp"
#include "hw/fabric.hpp"
#include "hw/node.hpp"
#include "sockets/host_tcp.hpp"

using namespace fabsim;
using namespace fabsim::core;

namespace {

double sockets_pingpong_us(std::uint32_t msg, int iters = 30, Histogram* hist = nullptr) {
  Engine engine;
  hw::Switch fabric(engine, iwarp_profile().switch_cfg);
  hw::Node node0(engine, 0, iwarp_profile().pcie, xeon_cpu());
  hw::Node node1(engine, 1, iwarp_profile().pcie, xeon_cpu());
  sockets::HostTcp tcp0(node0, fabric), tcp1(node1, fabric);
  auto [sock0, sock1] = sockets::HostTcp::connect(tcp0, tcp1);
  auto& b0 = node0.mem().alloc(msg, false);
  auto& b1 = node1.mem().alloc(msg, false);

  Time elapsed = 0;
  engine.spawn([](Engine& e, sockets::Socket& s, std::uint64_t addr, std::uint32_t m, int n,
                  Time* out, Histogram* h) -> Task<> {
    const Time start = e.now();
    for (int i = 0; i < n; ++i) {
      const Time iter0 = e.now();
      co_await s.send(addr, m);
      std::uint32_t got = 0;
      while (got < m) got += co_await s.recv(addr, m);
      if (h != nullptr) h->add(to_us(e.now() - iter0) / 2.0);
    }
    *out = e.now() - start;
  }(engine, *sock0, b0.addr(), msg, iters, &elapsed, hist));
  engine.spawn([](sockets::Socket& s, std::uint64_t addr, std::uint32_t m, int n) -> Task<> {
    for (int i = 0; i < n; ++i) {
      std::uint32_t got = 0;
      while (got < m) got += co_await s.recv(addr, m);
      co_await s.send(addr, m);
    }
  }(*sock1, b1.addr(), msg, iters));
  engine.run();
  return to_us(elapsed) / iters / 2.0;
}

}  // namespace

int main() {
  constexpr std::uint32_t kProbeMsg = 1024;
  std::printf("=== Extension X6: the Ethernet-Ethernot gap (host TCP vs offload) ===\n");

  Report report("ext_sockets");
  report.add_note("host TCP sockets vs offloaded stacks on identical 10GbE hardware");
  report.add_note("probe: sockets and iWARP half-RTT histograms + iWARP metrics at msg=1024B");

  Table latency("Half round trip (us) on identical 10GbE hardware", "msg_bytes",
                {"sockets", "iWARP", "MXoE", "speedup"});
  for (std::uint32_t msg : {8u, 64u, 1024u, 4096u, 16384u, 65536u}) {
    double sock = 0, iw = 0;
    if (msg == kProbeMsg) {
      Histogram sock_hist, iw_hist;
      MetricRegistry metrics;
      sock = sockets_pingpong_us(msg, 30, &sock_hist);
      iw = userlevel_pingpong_latency_us(iwarp_profile(), msg, 30, &iw_hist, &metrics);
      report.add_histogram("sockets.latency_us", sock_hist);
      report.add_histogram("iwarp.latency_us", iw_hist);
      report.add_metrics(metrics, "iwarp.");
    } else {
      sock = sockets_pingpong_us(msg);
      iw = userlevel_pingpong_latency_us(iwarp_profile(), msg);
    }
    const double moe = userlevel_pingpong_latency_us(mxoe_profile(), msg);
    latency.add_row(msg, {sock, iw, moe, sock / iw});
  }
  latency.print();
  report.add_table(latency);

  Table bw("One-way bandwidth (MB/s, from latency, 10GbE only)", "msg_bytes",
           {"sockets", "iWARP", "MXoE"});
  for (std::uint32_t msg : {65536u, 262144u, 1u << 20, 4u << 20}) {
    const double sock = static_cast<double>(msg) / sockets_pingpong_us(msg, 6);
    bw.add_row(msg, {sock, userlevel_bandwidth_mbps(iwarp_profile(), msg, 6),
                     userlevel_bandwidth_mbps(mxoe_profile(), msg, 6)});
  }
  bw.print();
  report.add_table(bw);
  report.write();

  std::printf(
      "\nThe offloaded stacks hold a 2-4x latency and 2-3x bandwidth advantage\n"
      "over kernel sockets on the same switch and cables — the gap that makes\n"
      "TOE+RDMA (iWARP) worth the silicon, and the context for the paper's\n"
      "\"unprecedented (TCP) latency for Ethernet\" claim.\n");
  return 0;
}

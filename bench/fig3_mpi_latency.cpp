// Figure 3: MPI inter-node ping-pong latency and the MPI layer's latency
// overhead over the respective user-level library.
#include <cstdio>

#include "core/report.hpp"
#include "core/runners.hpp"

using namespace fabsim;
using namespace fabsim::core;

int main() {
  const auto networks = {Network::kIwarp, Network::kIb, Network::kMxoe, Network::kMxom};
  constexpr std::uint32_t kProbeMsg = 1024;
  std::printf("=== Figure 3: MPI ping-pong latency and overhead (paper Sec. 6.1) ===\n");

  Report report("fig3_mpi_latency");
  report.add_note("MPI ping-pong latency and MPI-over-user-level overhead");
  report.add_note("probe: per-iteration half-RTT histogram + metrics at msg=1024B");

  Table latency("MPI inter-node latency (us, half RTT)", "msg_bytes",
                {"iWARP", "IB", "MXoE", "MXoM"});
  Table overhead("MPI latency overhead over user-level (%)", "msg_bytes",
                 {"iWARP", "IB", "MXoE", "MXoM"});
  for (std::uint32_t msg : pow2_sizes(4, 16 * 1024)) {
    std::vector<double> lat_row, ovh_row;
    for (Network n : networks) {
      const double user = userlevel_pingpong_latency_us(profile(n), msg);
      double mpi = 0;
      if (msg == kProbeMsg) {
        Histogram hist;
        MetricRegistry metrics;
        mpi = mpi_pingpong_latency_us(profile(n), msg, 30, &hist, &metrics);
        report.add_histogram(std::string(network_name(n)) + ".latency_us", hist);
        report.add_metrics(metrics, std::string(network_name(n)) + ".");
      } else {
        mpi = mpi_pingpong_latency_us(profile(n), msg);
      }
      lat_row.push_back(mpi);
      ovh_row.push_back((mpi - user) / user * 100.0);
    }
    latency.add_row(msg, std::move(lat_row));
    overhead.add_row(msg, std::move(ovh_row));
  }
  latency.print();
  overhead.print();
  latency.print_csv();

  report.add_table(latency);
  report.add_table(overhead);
  report.write();

  std::printf(
      "\nPaper reference points: short-message MPI latency ~10.7 (iWARP), 4.8\n"
      "(IB), 3.6 (MXoE), 3.3 (MXoM) us; MPICH-MX has the lowest overhead since\n"
      "MX semantics are closest to MPI.\n");
  return 0;
}

// Extension X2 — computation/communication overlap and independent
// progress (the paper names these among experiments omitted for space;
// the same authors published them separately in 2008).
//
// Method: sender issues MPI_Isend, computes for roughly the message's
// transfer time, then waits. If the stack progresses independently, the
// total is ~max(compute, transfer); if the host must drive the protocol,
// the total degrades toward compute + transfer. We report the overlap
// ratio: available_overlap = (t_blocking + t_compute - t_overlapped) /
// min(t_blocking, t_compute), clamped to [0, 1].
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/cluster.hpp"
#include "core/report.hpp"

using namespace fabsim;
using namespace fabsim::core;

namespace {

constexpr int kIters = 12;
constexpr int kTagData = 3;
constexpr int kTagSync = 900001;

struct OverlapResult {
  double blocking_us;    ///< isend+wait with no compute
  double overlapped_us;  ///< isend, compute, wait
  double compute_us;
};

OverlapResult run(Network network, std::uint32_t msg, Histogram* hist = nullptr,
                  MetricRegistry* metrics = nullptr) {
  Cluster cluster(2, network);
  if (metrics != nullptr) cluster.engine().set_metrics(metrics);
  auto& b0 = cluster.node(0).mem().alloc(msg, false);
  auto& b1 = cluster.node(1).mem().alloc(msg, false);
  auto& s0 = cluster.node(0).mem().alloc(64, false);
  auto& s1 = cluster.node(1).mem().alloc(64, false);

  OverlapResult result{};
  cluster.engine().spawn([](Cluster& c, std::uint64_t addr, std::uint64_t sync,
                            std::uint32_t m, OverlapResult* out, Histogram* h) -> Task<> {
    co_await c.setup_mpi();
    auto& rank = c.mpi_rank(0);
    auto& cpu = c.node(0).cpu();

    // Phase 1: blocking reference.
    Time t_block = 0;
    for (int i = 0; i < kIters; ++i) {
      co_await rank.recv(1, kTagSync, sync, 64);
      const Time t0 = c.engine().now();
      co_await rank.send(1, kTagData, addr, m);
      t_block += c.engine().now() - t0;
    }
    out->blocking_us = to_us(t_block) / kIters;

    // Phase 2: isend + compute(t_blocking) + wait.
    const Time compute = t_block / kIters;
    out->compute_us = to_us(compute);
    Time t_overlap = 0;
    for (int i = 0; i < kIters; ++i) {
      co_await rank.recv(1, kTagSync, sync, 64);
      const Time t0 = c.engine().now();
      auto req = co_await rank.isend(1, kTagData, addr, m);
      co_await cpu.compute(compute);
      co_await rank.wait(std::move(req));
      const Time taken = c.engine().now() - t0;
      if (h != nullptr) h->add(to_us(taken));
      t_overlap += taken;
    }
    out->overlapped_us = to_us(t_overlap) / kIters;
  }(cluster, b0.addr(), s0.addr(), msg, &result, hist));

  cluster.engine().spawn([](Cluster& c, std::uint64_t addr, std::uint64_t cap,
                            std::uint64_t sync, int total) -> Task<> {
    co_await c.setup_mpi();
    auto& rank = c.mpi_rank(1);
    for (int i = 0; i < total; ++i) {
      co_await rank.send(0, kTagSync, sync, 1);
      co_await rank.recv(0, kTagData, addr, cap);
    }
  }(cluster, b1.addr(), b1.size(), s1.addr(), 2 * kIters));
  cluster.engine().run();
  if (metrics != nullptr) cluster.collect_metrics(*metrics);
  return result;
}

double overlap_ratio(const OverlapResult& r) {
  const double saved = r.blocking_us + r.compute_us - r.overlapped_us;
  const double max_savable = std::min(r.blocking_us, r.compute_us);
  return std::clamp(saved / max_savable, 0.0, 1.0);
}

}  // namespace

int main() {
  const auto networks = {Network::kIwarp, Network::kIb, Network::kMxoe, Network::kMxom};
  constexpr std::uint32_t kProbeMsg = 65536;  // rendezvous-size: the interesting regime
  std::printf("=== Extension X2: computation/communication overlap ===\n");

  Report report("ext_overlap");
  report.add_note("sender-side overlap availability via isend+compute+wait");
  report.add_note("probe: overlapped-iteration duration histogram + metrics at msg=64KB");

  std::vector<std::string> cols;
  for (Network n : networks) cols.push_back(network_name(n));
  Table table("Sender-side overlap availability (1.0 = full overlap)", "msg_bytes", cols);
  for (std::uint32_t msg : {1024u, 8192u, 65536u, 262144u, 1u << 20}) {
    std::vector<double> row;
    for (Network n : networks) {
      if (msg == kProbeMsg) {
        Histogram hist;
        MetricRegistry metrics;
        row.push_back(overlap_ratio(run(n, msg, &hist, &metrics)));
        report.add_histogram(std::string(network_name(n)) + ".overlapped_us", hist);
        report.add_metrics(metrics, std::string(network_name(n)) + ".");
      } else {
        row.push_back(overlap_ratio(run(n, msg)));
      }
    }
    table.add_row(msg, std::move(row));
  }
  table.print();
  report.add_table(table);
  report.write();

  std::printf(
      "\nExpected shape: eager-size messages overlap everywhere (the NIC owns\n"
      "the transfer once posted). For rendezvous sizes the MPICH-derived verbs\n"
      "stacks lose overlap — the sender only answers the CTS inside MPI_Wait —\n"
      "while MX keeps progressing autonomously (its handshake lives on the\n"
      "NIC), matching the authors' 2008 follow-up study.\n");
  return 0;
}

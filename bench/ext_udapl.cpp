// Extension X7 — uDAPL vs raw verbs on both RDMA-capable interconnects
// (the paper's future work: "We intend to extend our study to include
// udapl, sockets, and applications"). Measures what the DAT abstraction
// layer costs on top of each provider.
#include <cstdio>

#include "core/cluster.hpp"
#include "core/report.hpp"
#include "core/runners.hpp"
#include "udapl/udapl.hpp"

using namespace fabsim;
using namespace fabsim::core;

namespace {

double udapl_pingpong_us(Network network, std::uint32_t msg, int iters = 24,
                         Histogram* hist = nullptr, MetricRegistry* metrics = nullptr) {
  Cluster cluster(2, network);
  if (metrics != nullptr) cluster.engine().set_metrics(metrics);
  udapl::InterfaceAdapter ia0(cluster.device(0), cluster.node(0));
  udapl::InterfaceAdapter ia1(cluster.device(1), cluster.node(1));
  auto evd0 = ia0.create_evd();
  auto evd1 = ia1.create_evd();
  auto ep0 = ia0.create_endpoint(*evd0);
  auto ep1 = ia1.create_endpoint(*evd1);
  udapl::InterfaceAdapter::connect(ia0, *ep0, *ep1);
  auto& b0 = cluster.node(0).mem().alloc(msg, false);
  auto& b1 = cluster.node(1).mem().alloc(msg, false);

  Time elapsed = 0;
  cluster.engine().spawn([](Cluster& c, udapl::InterfaceAdapter& a0,
                            udapl::InterfaceAdapter& a1, udapl::Endpoint& e0,
                            udapl::Endpoint& e1, std::uint64_t addr0, std::uint64_t addr1,
                            std::uint32_t m, int n, Time* out, Histogram* h) -> Task<> {
    const udapl::Lmr lmr0 = co_await a0.create_lmr(addr0, m);
    const udapl::Lmr lmr1 = co_await a1.create_lmr(addr1, m);
    const udapl::Rmr rmr0 = a0.bind_rmr(lmr0);
    const udapl::Rmr rmr1 = a1.bind_rmr(lmr1);

    c.engine().spawn([](Cluster& cc, udapl::Endpoint& ep, udapl::Lmr mine, udapl::Rmr peer,
                        std::uint32_t mm, int count) -> Task<> {
      for (int i = 0; i < count; ++i) {
        auto incoming = cc.device(1).watch_placement(mine.addr(), mm);
        co_await incoming->wait();
        co_await ep.post_rdma_write(mine, mm, peer, 2);
      }
    }(c, e1, lmr1, rmr0, m, n));

    const Time start = c.engine().now();
    for (int i = 0; i < n; ++i) {
      const Time iter0 = c.engine().now();
      auto reply = c.device(0).watch_placement(lmr0.addr(), m);
      co_await e0.post_rdma_write(lmr0, m, rmr1, 1);
      co_await reply->wait();
      if (h != nullptr) h->add(to_us(c.engine().now() - iter0) / 2.0);
    }
    *out = c.engine().now() - start;
  }(cluster, ia0, ia1, *ep0, *ep1, b0.addr(), b1.addr(), msg, iters, &elapsed, hist));
  cluster.engine().run();
  if (metrics != nullptr) cluster.collect_metrics(*metrics);
  return to_us(elapsed) / iters / 2.0;
}

}  // namespace

int main() {
  constexpr std::uint32_t kProbeMsg = 4096;
  std::printf("=== Extension X7: uDAPL over iWARP and IB ===\n");

  Report report("ext_udapl");
  report.add_note("uDAPL RDMA-write ping-pong vs raw verbs, iWARP and IB");
  report.add_note("probe: uDAPL half-RTT histogram + metrics at msg=4KB");

  for (Network network : {Network::kIwarp, Network::kIb}) {
    Table table(std::string("RDMA-write ping-pong latency (us) — ") + network_name(network),
                "msg_bytes", {"verbs", "uDAPL", "overhead_us"});
    for (std::uint32_t msg : {8u, 256u, 4096u, 65536u, 262144u}) {
      const double raw = userlevel_pingpong_latency_us(profile(network), msg);
      double dapl = 0;
      if (msg == kProbeMsg) {
        Histogram hist;
        MetricRegistry metrics;
        dapl = udapl_pingpong_us(network, msg, 24, &hist, &metrics);
        report.add_histogram(std::string(network_name(network)) + ".udapl_latency_us", hist);
        report.add_metrics(metrics, std::string(network_name(network)) + ".");
      } else {
        dapl = udapl_pingpong_us(network, msg);
      }
      table.add_row(msg, {raw, dapl, dapl - raw});
    }
    table.print();
    report.add_table(table);
  }

  report.write();

  std::printf(
      "\nExpected shape: a fixed few-hundred-nanosecond dispatch cost per\n"
      "operation, vanishing in relative terms as messages grow — the DAT\n"
      "layer is thin by design.\n");
  return 0;
}

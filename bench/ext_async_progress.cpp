// Extension X10 — asynchronous progress ("enhance the NetEffect MPI
// implementation", paper Sec. 7). Adds a background progress engine to
// the verbs MPIs and re-runs the two experiments that synchronous
// progress ruins: the LogP receiver overhead at rendezvous sizes and
// sender-side overlap. MX already progresses on the NIC; with async
// progress the verbs stacks catch up.
#include <algorithm>
#include <cstdio>

#include "core/report.hpp"
#include "core/runners.hpp"

using namespace fabsim;
using namespace fabsim::core;

int main() {
  constexpr std::uint32_t kProbeMsg = 65536;  // rendezvous regime: the point of the ablation
  std::printf("=== Extension X10: asynchronous progress for the verbs MPIs ===\n");

  Report report("ext_async_progress");
  report.add_note("LogP Or(m), synchronous vs asynchronous progress, verbs MPIs");
  report.add_note("probe: Or call-duration histograms + metrics at msg=64KB, iWARP sync/async");

  Table table("LogP receiver overhead Or(m) in us: sync vs async progress", "msg_bytes",
              {"iWARP sync", "iWARP async", "IB sync", "IB async"});
  for (std::uint32_t msg : {1024u, 16384u, 65536u, 262144u}) {
    NetworkProfile iw_async = iwarp_profile();
    iw_async.mpi.async_progress = true;
    NetworkProfile ib_async = ib_profile();
    ib_async.mpi.async_progress = true;
    if (msg == kProbeMsg) {
      Histogram sync_or, async_or;
      MetricRegistry metrics;
      table.add_row(msg,
                    {logp_parameters(iwarp_profile(), msg, 10, nullptr, &sync_or, &metrics).or_us,
                     logp_parameters(iw_async, msg, 10, nullptr, &async_or).or_us,
                     logp_parameters(ib_profile(), msg, 10).or_us,
                     logp_parameters(ib_async, msg, 10).or_us});
      report.add_histogram("iwarp_sync.or_us", sync_or);
      report.add_histogram("iwarp_async.or_us", async_or);
      report.add_metrics(metrics, "iwarp_sync.");
    } else {
      table.add_row(msg, {logp_parameters(iwarp_profile(), msg, 10).or_us,
                          logp_parameters(iw_async, msg, 10).or_us,
                          logp_parameters(ib_profile(), msg, 10).or_us,
                          logp_parameters(ib_async, msg, 10).or_us});
    }
  }
  table.print();
  report.add_table(table);
  report.write();

  std::printf(
      "\nExpected shape: with a progress engine, the rendezvous handshake is\n"
      "answered while the receiver computes, so the Or(m) jump (tens to\n"
      "hundreds of microseconds under synchronous progress) collapses to the\n"
      "microsecond class — the verbs stacks behave like MX's NIC progression.\n");
  return 0;
}

// Figure 6: effect of message-buffer re-use on ping-pong latency.
// 16 statically-allocated buffers per message size; the reported value is
// the ratio of no-re-use (cycle all 16) latency over full-re-use (always
// the same buffer) latency.
#include <cstdio>

#include "core/report.hpp"
#include "core/runners.hpp"

using namespace fabsim;
using namespace fabsim::core;

int main(int argc, char**) {
  const bool quick = argc > 1;
  const auto networks = {Network::kIwarp, Network::kIb, Network::kMxoe, Network::kMxom};
  constexpr std::uint32_t kProbeMsg = 4096;
  std::printf("=== Figure 6: buffer re-use effect (paper Sec. 6.4) ===\n");

  Report report("fig6_buffer_reuse");
  report.add_note("buffer re-use effect: no-reuse/full-reuse latency ratio");
  report.add_note("probe: cold (no-reuse) and warm half-RTT histograms + metrics at msg=4KB");

  Table ratio("Latency ratio: 0% re-use / 100% re-use", "msg_bytes",
              {"iWARP", "IB", "MXoE", "MXoM"});
  for (std::uint32_t msg : pow2_sizes(64, quick ? 256 * 1024 : 1 << 20)) {
    std::vector<double> row;
    const int iters = msg >= (1 << 19) ? 20 : 32;
    for (Network n : networks) {
      double cold = 0, warm = 0;
      if (msg == kProbeMsg) {
        Histogram cold_hist, warm_hist;
        MetricRegistry metrics;
        cold = bufreuse_latency_us(profile(n), msg, /*reuse=*/false, 16, iters, &cold_hist,
                                   &metrics);
        warm = bufreuse_latency_us(profile(n), msg, /*reuse=*/true, 16, iters, &warm_hist);
        report.add_histogram(std::string(network_name(n)) + ".cold_latency_us", cold_hist);
        report.add_histogram(std::string(network_name(n)) + ".warm_latency_us", warm_hist);
        report.add_metrics(metrics, std::string(network_name(n)) + ".");
      } else {
        cold = bufreuse_latency_us(profile(n), msg, /*reuse=*/false, 16, iters);
        warm = bufreuse_latency_us(profile(n), msg, /*reuse=*/true, 16, iters);
      }
      row.push_back(cold / warm);
    }
    ratio.add_row(msg, std::move(row));
  }
  ratio.print();
  ratio.print_csv();

  report.add_table(ratio);
  report.write();

  std::printf(
      "\nPaper reference points: <10%% impact up to 256 B; eager-size ratios\n"
      "~1.08 (iWARP) / ~1.55 (IB) / ~1.53 (Myrinet); rendezvous-size peaks 4.3\n"
      "(IB, 128 KB), ~2.0 (iWARP, 256 KB), ~2.4 (Myri-10G, 1 MB). Registration\n"
      "cost dominates; iWARP is best for very large messages. Disabling the MX\n"
      "registration cache flattens the Myrinet curve (see ext_ablation_regcache).\n");
  return 0;
}

// Figure 6: effect of message-buffer re-use on ping-pong latency.
// 16 statically-allocated buffers per message size; the reported value is
// the ratio of no-re-use (cycle all 16) latency over full-re-use (always
// the same buffer) latency.
#include <cstdio>

#include "core/report.hpp"
#include "core/runners.hpp"

using namespace fabsim;
using namespace fabsim::core;

int main(int argc, char** argv) {
  const bool quick = argc > 1;
  const auto networks = {Network::kIwarp, Network::kIb, Network::kMxoe, Network::kMxom};
  std::printf("=== Figure 6: buffer re-use effect (paper Sec. 6.4) ===\n");

  Table ratio("Latency ratio: 0% re-use / 100% re-use", "msg_bytes",
              {"iWARP", "IB", "MXoE", "MXoM"});
  for (std::uint32_t msg : pow2_sizes(64, quick ? 256 * 1024 : 1 << 20)) {
    std::vector<double> row;
    const int iters = msg >= (1 << 19) ? 20 : 32;
    for (Network n : networks) {
      const double cold = bufreuse_latency_us(profile(n), msg, /*reuse=*/false, 16, iters);
      const double warm = bufreuse_latency_us(profile(n), msg, /*reuse=*/true, 16, iters);
      row.push_back(cold / warm);
    }
    ratio.add_row(msg, std::move(row));
  }
  ratio.print();
  ratio.print_csv();

  std::printf(
      "\nPaper reference points: <10%% impact up to 256 B; eager-size ratios\n"
      "~1.08 (iWARP) / ~1.55 (IB) / ~1.53 (Myrinet); rendezvous-size peaks 4.3\n"
      "(IB, 128 KB), ~2.0 (iWARP, 256 KB), ~2.4 (Myri-10G, 1 MB). Registration\n"
      "cost dominates; iWARP is best for very large messages. Disabling the MX\n"
      "registration cache flattens the Myrinet curve (see ext_ablation_regcache).\n");
  return 0;
}

// Extension X13 — FabricExplore: bounded schedule-space model checking.
//
// Where every other bench runs ONE schedule (the engine's deterministic
// insertion-order tie-break) and audits it with FabricCheck, this driver
// searches the schedule space: for each bounded scenario it enumerates
// legal tie-breaks among co-enabled same-timestamp events (DFS over
// decision prefixes with a commutativity reduction, plus an optional
// seeded fuzzer) and fails loudly on any interleaving that triggers an
// invariant violation, a deadlock, digest divergence, or a scenario
// expectation failure. Counterexamples are minimized, replay-verified,
// and written to results/counterexamples/*.json; `--schedule FILE`
// replays such an artifact through the exact same decision points.
//
// The mutation seams (--mutation / FABSIM_MUTATION) re-introduce two
// historical bugs behind test-only config flags so CI can prove the
// search actually finds real defects, not just burns CPU:
//   strand_pending_reads — the PR-4 stranded-RDMA-Read hang (deadlock)
//   drop_final_ack       — swallowed final acks (spurious retry
//                          exhaustion, an expectation finding)
//
// Exit status: 0 = clean sweep (or a replayed artifact reproduced its
// recorded failure), 1 = findings (or a replay that did not reproduce).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "explore/explorer.hpp"
#include "explore/scenarios.hpp"

using namespace fabsim;
using namespace fabsim::explore;

namespace {

struct Options {
  std::string scenario;          ///< empty = every bounded scenario
  std::string schedule_file;     ///< replay mode when non-empty
  Mutation mutation = Mutation::kNone;
  ExploreBudget budget;
  std::string out_dir = "results/counterexamples";
  bool quick = false;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [quick] [--scenario NAME] [--mutation NAME] [--budget RUNS]\n"
               "          [--depth N] [--branch N] [--fuzz RUNS] [--seed N] [--no-reduction]\n"
               "          [--schedule FILE] [--out DIR]\n"
               "mutations: none | strand_pending_reads | drop_final_ack | leak_credit_on_drain\n"
               "           (or FABSIM_MUTATION)\n",
               argv0);
}

bool parse_args(int argc, char** argv, Options& opt) {
  // The mutation seam is also reachable via the environment so CI can
  // flip it without touching the command line of the shared runner.
  if (const char* env = std::getenv("FABSIM_MUTATION")) {
    if (!mutation_from_name(env, opt.mutation)) {
      std::fprintf(stderr, "ext_explore: bad FABSIM_MUTATION '%s'\n", env);
      return false;
    }
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "quick") {
      opt.quick = true;
      opt.budget.max_runs = 128;
      opt.budget.fuzz_runs = 16;
    } else if (arg == "--scenario") {
      if (const char* v = value()) opt.scenario = v; else return false;
    } else if (arg == "--mutation") {
      const char* v = value();
      if (v == nullptr || !mutation_from_name(v, opt.mutation)) {
        std::fprintf(stderr, "ext_explore: bad --mutation\n");
        return false;
      }
    } else if (arg == "--budget") {
      if (const char* v = value()) opt.budget.max_runs = std::strtoull(v, nullptr, 10);
      else return false;
    } else if (arg == "--depth") {
      if (const char* v = value()) opt.budget.max_depth = std::strtoull(v, nullptr, 10);
      else return false;
    } else if (arg == "--branch") {
      if (const char* v = value())
        opt.budget.max_branch = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
      else return false;
    } else if (arg == "--fuzz") {
      if (const char* v = value()) opt.budget.fuzz_runs = std::strtoull(v, nullptr, 10);
      else return false;
    } else if (arg == "--seed") {
      if (const char* v = value()) opt.budget.seed = std::strtoull(v, nullptr, 10);
      else return false;
    } else if (arg == "--no-reduction") {
      opt.budget.reduction = false;
    } else if (arg == "--schedule") {
      if (const char* v = value()) opt.schedule_file = v; else return false;
    } else if (arg == "--out") {
      if (const char* v = value()) opt.out_dir = v; else return false;
    } else {
      usage(argv[0]);
      return false;
    }
  }
  return true;
}

/// Replay mode: load an artifact, steer the named scenario through its
/// recorded choices, and report whether the recorded failure reproduces.
int replay_schedule(const Options& opt) {
  std::ifstream in(opt.schedule_file);
  if (!in) {
    std::fprintf(stderr, "ext_explore: cannot read %s\n", opt.schedule_file.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const Schedule schedule = Schedule::from_json(text.str());

  Mutation mutation = opt.mutation;
  if (!mutation_from_name(schedule.mutation, mutation)) {
    std::fprintf(stderr, "ext_explore: artifact has unknown mutation '%s'\n",
                 schedule.mutation.c_str());
    return 1;
  }
  const Scenario scenario = find_scenario(schedule.scenario, mutation);
  const RunOutcome outcome = Explorer::replay(scenario, schedule);

  std::printf("replay %s: scenario=%s mutation=%s choices=%zu\n", opt.schedule_file.c_str(),
              schedule.scenario.c_str(), mutation_name(mutation), schedule.choices.size());
  std::printf("  recorded: kind=%s rule=%s digest=%s\n", schedule.kind.c_str(),
              schedule.rule.c_str(), to_hex_u64(schedule.digest).c_str());
  std::printf("  observed: failed=%d kind=%s rule=%s digest=%s events=%llu\n", outcome.failed,
              finding_kind_name(outcome.kind), outcome.rule.c_str(),
              to_hex_u64(outcome.digest).c_str(),
              static_cast<unsigned long long>(outcome.events));
  const bool reproduced = outcome.failed &&
                          finding_kind_name(outcome.kind) == schedule.kind &&
                          outcome.rule == schedule.rule;
  std::printf("  %s\n", reproduced ? "REPRODUCED" : "NOT REPRODUCED");
  return reproduced ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;
  if (!opt.schedule_file.empty()) return replay_schedule(opt);

  std::printf("=== Extension X13: bounded schedule-space exploration ===\n");
  std::printf("mutation=%s budget=%llu depth=%zu branch=%u fuzz=%llu seed=%llu reduction=%d\n",
              mutation_name(opt.mutation),
              static_cast<unsigned long long>(opt.budget.max_runs), opt.budget.max_depth,
              opt.budget.max_branch, static_cast<unsigned long long>(opt.budget.fuzz_runs),
              static_cast<unsigned long long>(opt.budget.seed), opt.budget.reduction);

  std::vector<Scenario> scenarios;
  if (opt.scenario.empty()) {
    scenarios = bounded_scenarios(opt.mutation);
  } else {
    scenarios.push_back(find_scenario(opt.scenario, opt.mutation));
  }

  core::Report report("ext_explore");
  report.add_note(std::string("mutation=") + mutation_name(opt.mutation));
  report.add_note("search: DFS over co-enabled tie-breaks + seeded fuzz; see "
                  "docs/model_checking.md");

  std::size_t total_findings = 0;
  std::uint64_t total_events = 0;
  std::vector<std::string> artifacts;
  MetricRegistry registry;
  core::Table table("schedule exploration per scenario", "scenario",
                    {"runs", "decisions", "enqueued", "pruned", "exhausted", "findings"});
  int row = 0;
  for (Scenario& scenario : scenarios) {
    const std::string name = scenario.name;
    Explorer explorer(std::move(scenario), opt.budget);
    const ExploreResult result = explorer.explore();
    const ExploreStats& s = result.stats;
    std::printf("%-24s runs=%-5llu decisions=%-4llu enqueued=%-5llu pruned=%-5llu "
                "exhausted=%d findings=%zu\n",
                name.c_str(), static_cast<unsigned long long>(s.runs),
                static_cast<unsigned long long>(s.baseline_decisions),
                static_cast<unsigned long long>(s.enqueued),
                static_cast<unsigned long long>(s.pruned), s.frontier_exhausted,
                result.findings.size());
    table.add_row(row++,
                  {static_cast<double>(s.runs), static_cast<double>(s.baseline_decisions),
                   static_cast<double>(s.enqueued), static_cast<double>(s.pruned),
                   s.frontier_exhausted ? 1.0 : 0.0,
                   static_cast<double>(result.findings.size())});
    report.add_note(name + ": runs=" + std::to_string(s.runs) +
                    " pruned=" + std::to_string(s.pruned) +
                    " findings=" + std::to_string(result.findings.size()));
    total_events += s.baseline_events;
    registry.counter(name + ".sim.events").set(s.baseline_events);
    registry.counter(name + ".sim.digest").set(s.baseline_digest);
    registry.counter(name + ".explore.runs").set(s.runs);
    registry.counter(name + ".explore.pruned").set(s.pruned);
    registry.counter(name + ".explore.findings").set(result.findings.size());

    for (const Finding& finding : result.findings) {
      ++total_findings;
      std::printf("  FINDING kind=%s rule=%s replay_confirmed=%d choices=%zu (was %zu)\n",
                  finding_kind_name(finding.kind), finding.rule.c_str(),
                  finding.replay_confirmed, finding.schedule.choices.size(),
                  finding.original_choices);
      std::printf("    %s\n", finding.detail.c_str());
      Schedule artifact = finding.schedule;
      artifact.mutation = mutation_name(opt.mutation);
      std::error_code ec;
      std::filesystem::create_directories(opt.out_dir, ec);
      std::string path = opt.out_dir + "/" + name;
      if (opt.mutation != Mutation::kNone) path += std::string("_") + artifact.mutation;
      path += std::string("_") + finding_kind_name(finding.kind) + ".json";
      std::ofstream out(path);
      out << artifact.to_json();
      std::printf("    counterexample: %s\n", path.c_str());
      artifacts.push_back(path);
    }
  }
  table.print();
  report.add_table(std::move(table));
  report.add_scalar("findings", static_cast<double>(total_findings));
  report.add_scalar("scenarios", static_cast<double>(scenarios.size()));
  // Aggregate baseline-run event count so scripts/assert_clean.py can
  // apply its "workload actually ran" gate to this report too.
  registry.counter("sim.events").set(total_events);
  report.add_metrics(registry);
  for (const std::string& path : artifacts) report.add_note("counterexample: " + path);
  report.write();

  if (total_findings != 0) {
    std::printf("ext_explore: %zu finding(s) — schedule space NOT clean\n", total_findings);
    return 1;
  }
  std::printf("ext_explore: schedule space clean within budget\n");
  return 0;
}

// Figure 4: MPI unidirectional, bidirectional, and both-way bandwidth.
// The eager/rendezvous protocol-switch dips are the interesting feature:
// between 4 and 8 KB for iWARP's MPI, at 8 KB for MVAPICH/IB, and after
// 32 KB for MPICH-MX (inside the MX library).
#include <cstdio>

#include "core/report.hpp"
#include "core/runners.hpp"

using namespace fabsim;
using namespace fabsim::core;

int main(int argc, char** argv) {
  const bool quick = argc > 1;
  const auto networks = {Network::kIwarp, Network::kIb, Network::kMxoe, Network::kMxom};
  std::printf("=== Figure 4: MPI bandwidth, three modes (paper Sec. 6.2) ===\n");

  const auto sizes = pow2_sizes(quick ? 4096 : 256, quick ? 1 << 20 : 4 << 20);

  Table uni("MPI unidirectional bandwidth (MB/s)", "msg_bytes", {"iWARP", "IB", "MXoE", "MXoM"});
  Table bidi("MPI bidirectional bandwidth (MB/s)", "msg_bytes", {"iWARP", "IB", "MXoE", "MXoM"});
  Table both("MPI both-way bandwidth (MB/s)", "msg_bytes", {"iWARP", "IB", "MXoE", "MXoM"});
  for (std::uint32_t msg : sizes) {
    std::vector<double> u, b, w;
    const int windows = msg >= (1 << 20) ? 3 : 6;
    for (Network n : networks) {
      u.push_back(mpi_unidir_bw_mbps(profile(n), msg, 16, windows));
      b.push_back(mpi_bidir_bw_mbps(profile(n), msg, msg >= (1 << 20) ? 6 : 12));
      w.push_back(mpi_bothway_bw_mbps(profile(n), msg, 16, windows));
    }
    uni.add_row(msg, std::move(u));
    bidi.add_row(msg, std::move(b));
    both.add_row(msg, std::move(w));
  }
  uni.print();
  bidi.print();
  both.print();
  uni.print_csv();

  std::printf(
      "\nPaper reference points: bidirectional peaks 856 (iWARP) / ~960 (IB) /\n"
      "734 (Myrinet) MB/s; both-way 950 MB/s for iWARP (89%% of its internal\n"
      "PCI-X), ~89%% of 2 GB/s for IB, ~70%% of 2 GB/s for Myri-10G. InfiniBand\n"
      "is the clear winner in the bandwidth tests.\n");
  return 0;
}

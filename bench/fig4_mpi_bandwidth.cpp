// Figure 4: MPI unidirectional, bidirectional, and both-way bandwidth.
// The eager/rendezvous protocol-switch dips are the interesting feature:
// between 4 and 8 KB for iWARP's MPI, at 8 KB for MVAPICH/IB, and after
// 32 KB for MPICH-MX (inside the MX library).
#include <cstdio>

#include "core/report.hpp"
#include "core/runners.hpp"

using namespace fabsim;
using namespace fabsim::core;

int main(int argc, char**) {
  const bool quick = argc > 1;
  const auto networks = {Network::kIwarp, Network::kIb, Network::kMxoe, Network::kMxom};
  constexpr std::uint32_t kProbeMsg = 65536;  // present in both sweep variants
  std::printf("=== Figure 4: MPI bandwidth, three modes (paper Sec. 6.2) ===\n");

  const auto sizes = pow2_sizes(quick ? 4096 : 256, quick ? 1 << 20 : 4 << 20);

  Report report("fig4_mpi_bandwidth");
  report.add_note("MPI bandwidth: unidirectional, bidirectional, both-way");
  report.add_note("probe: per-window unidirectional latency histogram + metrics at msg=64KB");

  Table uni("MPI unidirectional bandwidth (MB/s)", "msg_bytes", {"iWARP", "IB", "MXoE", "MXoM"});
  Table bidi("MPI bidirectional bandwidth (MB/s)", "msg_bytes", {"iWARP", "IB", "MXoE", "MXoM"});
  Table both("MPI both-way bandwidth (MB/s)", "msg_bytes", {"iWARP", "IB", "MXoE", "MXoM"});
  for (std::uint32_t msg : sizes) {
    std::vector<double> u, b, w;
    const int windows = msg >= (1 << 20) ? 3 : 6;
    for (Network n : networks) {
      if (msg == kProbeMsg) {
        Histogram hist;
        MetricRegistry metrics;
        u.push_back(mpi_unidir_bw_mbps(profile(n), msg, 16, windows, &hist, &metrics));
        report.add_histogram(std::string(network_name(n)) + ".window_us", hist);
        report.add_metrics(metrics, std::string(network_name(n)) + ".");
      } else {
        u.push_back(mpi_unidir_bw_mbps(profile(n), msg, 16, windows));
      }
      b.push_back(mpi_bidir_bw_mbps(profile(n), msg, msg >= (1 << 20) ? 6 : 12));
      w.push_back(mpi_bothway_bw_mbps(profile(n), msg, 16, windows));
    }
    uni.add_row(msg, std::move(u));
    bidi.add_row(msg, std::move(b));
    both.add_row(msg, std::move(w));
  }
  uni.print();
  bidi.print();
  both.print();
  uni.print_csv();

  report.add_table(uni);
  report.add_table(bidi);
  report.add_table(both);
  report.write();

  std::printf(
      "\nPaper reference points: bidirectional peaks 856 (iWARP) / ~960 (IB) /\n"
      "734 (Myrinet) MB/s; both-way 950 MB/s for iWARP (89%% of its internal\n"
      "PCI-X), ~89%% of 2 GB/s for IB, ~70%% of 2 GB/s for Myri-10G. InfiniBand\n"
      "is the clear winner in the bandwidth tests.\n");
  return 0;
}

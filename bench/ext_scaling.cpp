// Extension X8 — a larger testbed (the paper's closing future-work item:
// "We plan to put these networks to the test in a larger testbed").
// Scales the simulated cluster to 16 nodes and measures how the
// interconnects' collective performance diverges with rank count.
//
// This is also the perf-trajectory workload: the heaviest configuration
// (16 ranks, bandwidth-bound allreduce) re-runs with a FabricProf
// profiler attached, publishing host events/sec per network as
// <net>.events_per_sec scalars (scraped into BENCH_engine.json by
// scripts/bench_engine.py) plus the prof.* hot-spot breakdown in the
// metrics section.
//
// Args:
//   quick   smaller sweep (2..8 ranks, probe at 8) writing
//           results/ext_scaling_quick.* — the CI perf-smoke config
//   --full  keep per-node/per-rank metric detail in the report instead
//           of the aggregate trim
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/report.hpp"
#include "sim/prof.hpp"

using namespace fabsim;
using namespace fabsim::core;

namespace {

double allreduce_us(Network network, int ranks, std::uint32_t count_doubles, int iters = 8,
                    Histogram* hist = nullptr, MetricRegistry* metrics = nullptr,
                    Profiler* profiler = nullptr) {
  NetworkProfile p = profile(network);
  p.mpi.eager_buffers = 64;  // keep the N^2 mesh memory bounded at 16 ranks
  Cluster cluster(ranks, p);
  if (metrics != nullptr) cluster.engine().set_metrics(metrics);
  if (profiler != nullptr) cluster.attach_profiler(*profiler);
  const std::uint32_t bytes = count_doubles * sizeof(double);
  std::vector<hw::Buffer*> data, scratch;
  for (int r = 0; r < ranks; ++r) {
    data.push_back(&cluster.node(r).mem().alloc(bytes, false));
    scratch.push_back(&cluster.node(r).mem().alloc(bytes, false));
  }
  std::vector<double> elapsed(static_cast<std::size_t>(ranks), 0);
  for (int r = 0; r < ranks; ++r) {
    cluster.engine().spawn([](Cluster& c, int me, std::uint32_t n, int it,
                              std::vector<hw::Buffer*>& d, std::vector<hw::Buffer*>& s,
                              double* out, Histogram* h) -> Task<> {
      co_await c.setup_mpi();
      auto& rank = c.mpi_rank(me);
      co_await rank.barrier();
      const double t0 = rank.wtime();
      const auto idx = static_cast<std::size_t>(me);
      for (int i = 0; i < it; ++i) {
        const double iter0 = rank.wtime();
        co_await rank.allreduce_sum(d[idx]->addr(), s[idx]->addr(), n);
        if (h != nullptr && me == 0) h->add((rank.wtime() - iter0) * 1e6);
      }
      *out = (rank.wtime() - t0) / it * 1e6;
    }(cluster, r, count_doubles, iters, data, scratch,
      &elapsed[static_cast<std::size_t>(r)], hist));
  }
  cluster.engine().run();
  if (metrics != nullptr) cluster.collect_metrics(*metrics);
  double worst = 0;
  for (double e : elapsed) worst = std::max(worst, e);
  return worst;
}

double barrier_us(Network network, int ranks, int iters = 10) {
  NetworkProfile p = profile(network);
  p.mpi.eager_buffers = 64;
  Cluster cluster(ranks, p);
  std::vector<double> elapsed(static_cast<std::size_t>(ranks), 0);
  for (int r = 0; r < ranks; ++r) {
    cluster.engine().spawn([](Cluster& c, int me, int it, double* out) -> Task<> {
      co_await c.setup_mpi();
      auto& rank = c.mpi_rank(me);
      co_await rank.barrier();
      const double t0 = rank.wtime();
      for (int i = 0; i < it; ++i) co_await rank.barrier();
      *out = (rank.wtime() - t0) / it * 1e6;
    }(cluster, r, iters, &elapsed[static_cast<std::size_t>(r)]));
  }
  cluster.engine().run();
  double worst = 0;
  for (double e : elapsed) worst = std::max(worst, e);
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool full_metrics = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "quick") quick = true;
    else if (arg == "--full") full_metrics = true;
    else {
      std::fprintf(stderr, "usage: %s [quick] [--full]\n", argv[0]);
      return 2;
    }
  }

  const auto networks = {Network::kIwarp, Network::kIb, Network::kMxoe, Network::kMxom};
  // Probe the heaviest configuration: bandwidth-bound allreduce at the
  // largest rank count in the sweep.
  const std::vector<int> rank_sweep = quick ? std::vector<int>{2, 8} : std::vector<int>{2, 4, 8, 16};
  const int probe_ranks = rank_sweep.back();
  constexpr std::uint32_t kProbeDoubles = 4096;
  const int probe_iters = quick ? 4 : 8;
  std::printf("=== Extension X8: scaling to a %d-node testbed%s ===\n", probe_ranks,
              quick ? " (quick)" : "");

  Report report(quick ? "ext_scaling_quick" : "ext_scaling");
  report.add_note("barrier and allreduce scaling, " + std::to_string(rank_sweep.front()) + ".." +
                  std::to_string(rank_sweep.back()) + " ranks");
  report.add_note("probe: rank-0 allreduce histogram + metrics + FabricProf host profile at " +
                  std::to_string(probe_ranks) + " ranks, 32KB" +
                  (full_metrics ? "" : " (pass --full for per-node/per-rank detail)"));

  std::vector<std::string> cols;
  for (Network n : networks) cols.push_back(network_name(n));

  {
    Table table("Barrier latency (us) vs ranks", "ranks", cols);
    for (int ranks : rank_sweep) {
      std::vector<double> row;
      for (Network n : networks) row.push_back(barrier_us(n, ranks));
      table.add_row(ranks, std::move(row));
    }
    table.print();
    report.add_table(table);
  }
  for (std::uint32_t doubles : {8u, 4096u}) {
    Table table("Allreduce " + std::to_string(doubles * 8) + "B latency (us) vs ranks", "ranks",
                cols);
    for (int ranks : rank_sweep) {
      std::vector<double> row;
      for (Network n : networks) {
        if (ranks == probe_ranks && doubles == kProbeDoubles) {
          Histogram hist;
          MetricRegistry metrics;
          // Host-time profile of the heaviest run: stride 8 keeps the
          // clock off 7 of 8 dispatches, slices stay bounded.
          Profiler profiler(Profiler::Config{.sample_stride = 8, .max_slices = 4096});
          row.push_back(allreduce_us(n, ranks, doubles, probe_iters, &hist, &metrics, &profiler));
          report.add_histogram(std::string(network_name(n)) + ".allreduce_us", hist);
          if (full_metrics) {
            report.add_metrics(metrics, std::string(network_name(n)) + ".");
          } else {
            report.add_metrics_if(metrics, std::string(network_name(n)) + ".",
                                  Report::aggregate_key);
          }
          report.add_scalar(std::string(network_name(n)) + ".events_per_sec",
                            profiler.events_per_sec(), "events/s");
        } else {
          row.push_back(allreduce_us(n, ranks, doubles, probe_iters));
        }
      }
      table.add_row(ranks, std::move(row));
    }
    table.print();
    report.add_table(table);
  }

  report.write();

  std::printf(
      "\nExpected shape: log2(N) growth for the small collectives, with the gap\n"
      "between interconnects set by their point-to-point latency; bandwidth-\n"
      "bound allreduce narrows the gap as IB's higher link rate offsets its\n"
      "per-hop latency deficit against Myrinet.\n");
  return 0;
}

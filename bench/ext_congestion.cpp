// Extension X9 — incast congestion on a bounded-buffer Ethernet switch.
// iWARP is the only stack here whose wire can legally drop frames (IB
// and Myrinet are credit-flow-controlled and lossless); this study shows
// what its TCP underlay buys and costs under incast: goodput vs switch
// buffer size, with drop and retransmission counts read from the
// FabricScope metric registry.
#include <cstdio>
#include <vector>

#include "core/cluster.hpp"
#include "core/report.hpp"

using namespace fabsim;
using namespace fabsim::core;

namespace {

struct IncastResult {
  double goodput_mbps;
  std::uint64_t drops;
  std::uint64_t retransmits;
};

IncastResult run(std::uint64_t buffer_bytes, int clients, std::uint32_t chunk,
                 Histogram* hist = nullptr, MetricRegistry* out = nullptr) {
  NetworkProfile p = iwarp_profile();
  p.switch_cfg.max_queue_bytes = buffer_bytes;
  p.rnic.rto = us(300);
  Cluster cluster(clients + 1, p);
  MetricRegistry registry;
  cluster.engine().set_metrics(&registry);

  std::vector<std::unique_ptr<verbs::CompletionQueue>> cqs;
  std::vector<std::unique_ptr<verbs::QueuePair>> qps;
  Time last = 0;
  for (int c = 0; c < clients; ++c) {
    cqs.push_back(std::make_unique<verbs::CompletionQueue>(cluster.engine()));
    auto server_qp = cluster.device(0).create_qp(*cqs.back(), *cqs.back());
    auto client_qp = cluster.device(c + 1).create_qp(*cqs.back(), *cqs.back());
    cluster.device(0).establish(*server_qp, *client_qp);
    auto& src = cluster.node(c + 1).mem().alloc(chunk, false);
    auto& dst = cluster.node(0).mem().alloc(chunk, false);
    cluster.engine().spawn([](Cluster& cl, verbs::QueuePair& qp, std::uint64_t s,
                              std::uint64_t d, int client, std::uint32_t n,
                              Time* end, Histogram* h) -> Task<> {
      auto lkey = co_await cl.device(client + 1).reg_mr(s, n);
      auto rkey = co_await cl.device(0).reg_mr(d, n);
      for (int i = 0; i < 4; ++i) {
        const Time chunk0 = cl.engine().now();
        auto watch = cl.device(0).watch_placement(d, n);
        co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                            .opcode = verbs::Opcode::kRdmaWrite,
                                            .sge = {s, n, lkey},
                                            .remote_addr = d,
                                            .rkey = rkey});
        co_await watch->wait();
        if (h != nullptr) h->add(to_us(cl.engine().now() - chunk0));
        *end = std::max(*end, cl.engine().now());
      }
    }(cluster, *client_qp, src.addr(), dst.addr(), c, chunk, &last, hist));
    qps.push_back(std::move(server_qp));
    qps.push_back(std::move(client_qp));
  }
  cluster.engine().run();
  cluster.collect_metrics(registry);

  IncastResult result{};
  result.goodput_mbps = 4.0 * clients * chunk / to_us(last);
  // Drops at the server's switch port; retransmits summed over clients —
  // both read back from the registry taxonomy.
  result.drops = registry.counter_value(
      "switch.port" + std::to_string(cluster.rnic(0).fabric_port()) + ".tail_drops");
  for (int c = 1; c <= clients; ++c) {
    result.retransmits +=
        registry.counter_value("iwarp.node" + std::to_string(c) + ".retransmits");
  }
  if (out != nullptr) *out = registry;
  return result;
}

}  // namespace

int main() {
  std::printf("=== Extension X9: iWARP incast vs switch buffering ===\n");
  constexpr std::uint32_t kChunk = 192 * 1024;
  // Probe the interesting middle of the sweep: buffers too small for the
  // aggregate burst but large enough for useful pipelining.
  constexpr std::uint64_t kProbeBuffer = 48ull << 10;
  constexpr int kProbeClients = 3;

  Report report("ext_congestion");
  report.add_note("iWARP incast: goodput vs switch buffer, drops/retransmits from registry");
  report.add_note("probe: per-chunk completion histogram + metrics at 48KB buffer, 3 clients");

  for (int clients : {2, 3}) {
    Table table(std::to_string(clients) + " clients x 4 x 192 KB into one port", "buffer_bytes",
                {"goodput MB/s", "drops", "retransmits"});
    for (std::uint64_t buffer : {16ull << 10, 48ull << 10, 128ull << 10, 512ull << 10,
                                 4ull << 20}) {
      IncastResult r{};
      if (buffer == kProbeBuffer && clients == kProbeClients) {
        Histogram hist;
        MetricRegistry metrics;
        r = run(buffer, clients, kChunk, &hist, &metrics);
        report.add_histogram("iwarp.chunk_us", hist);
        report.add_metrics(metrics, "iwarp.");
      } else {
        r = run(buffer, clients, kChunk);
      }
      table.add_row(static_cast<double>(buffer),
                    {r.goodput_mbps, static_cast<double>(r.drops),
                     static_cast<double>(r.retransmits)});
    }
    table.print();
    report.add_table(table);
  }

  report.write();

  std::printf(
      "\nExpected shape: tiny buffers force repeated go-back-N rounds (goodput\n"
      "collapse, classic TCP incast); once the buffer covers the aggregate\n"
      "burst, drops vanish and goodput pins at the server's PCI-X ceiling.\n");
  return 0;
}

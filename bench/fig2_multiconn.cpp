// Figure 2: normalized multiple-connection latency and aggregate
// throughput for NetEffect iWARP vs Mellanox IB over the common verbs
// interface, 1..256 connections between two nodes.
#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "core/runners.hpp"

using namespace fabsim;
using namespace fabsim::core;

int main(int argc, char**) {
  const bool quick = argc > 1;  // smaller sweep for smoke runs
  std::printf("=== Figure 2: multi-connection scalability (paper Sec. 5.1) ===\n");

  const std::vector<int> connections =
      quick ? std::vector<int>{1, 4, 16, 64} : std::vector<int>{1, 2, 4, 8, 16, 32, 64, 128, 256};
  const std::vector<std::uint32_t> lat_sizes = {1, 1024, 2048, 4096, 8192, 16384};
  const std::vector<std::uint32_t> tput_sizes = {512, 1024, 2048, 4096, 8192, 16384};
  // FabricScope probe configuration (present in both sweep variants).
  constexpr int kProbeConns = 16;
  constexpr std::uint32_t kProbeMsg = 1024;

  Report report("fig2_multiconn");
  report.add_note("multi-connection scalability, iWARP vs IB over common verbs");
  report.add_note("probe: per-round normalized latency histogram + metrics at conns=16 msg=1024B");

  for (Network network : {Network::kIwarp, Network::kIb}) {
    std::vector<std::string> cols;
    for (auto m : lat_sizes) cols.push_back("msg=" + std::to_string(m) + "B");
    Table latency(std::string("Normalized multi-connection latency (us) — ") +
                      network_name(network),
                  "connections", cols);
    for (int c : connections) {
      std::vector<double> row;
      for (auto m : lat_sizes) {
        if (c == kProbeConns && m == kProbeMsg) {
          Histogram hist;
          MetricRegistry metrics;
          row.push_back(multiconn_normalized_latency_us(profile(network), c, m, 16, &hist,
                                                        &metrics));
          report.add_histogram(std::string(network_name(network)) + ".norm_latency_us", hist);
          report.add_metrics(metrics, std::string(network_name(network)) + ".");
        } else {
          row.push_back(multiconn_normalized_latency_us(profile(network), c, m));
        }
      }
      latency.add_row(c, std::move(row));
    }
    latency.print();
    report.add_table(latency);
  }

  for (Network network : {Network::kIwarp, Network::kIb}) {
    std::vector<std::string> cols;
    for (auto m : tput_sizes) cols.push_back("msg=" + std::to_string(m) + "B");
    Table tput(std::string("Multi-connection aggregate throughput (MB/s) — ") +
                   network_name(network),
               "connections", cols);
    for (int c : connections) {
      std::vector<double> row;
      for (auto m : tput_sizes) {
        row.push_back(multiconn_throughput_mbps(profile(network), c, m));
      }
      tput.add_row(c, std::move(row));
    }
    tput.print();
    report.add_table(tput);
  }

  report.write();

  std::printf(
      "\nPaper reference shape: iWARP normalized latency keeps dropping up to 128\n"
      "connections (pipelined protocol engine); IB improves only up to 8\n"
      "connections, then serializes (QP context cache misses on the MemFree\n"
      "card). Throughput mirrors it: IB small-message throughput drops at 8+\n"
      "connections, iWARP sustains. Behaviour converges for messages > 4 KB.\n");
  return 0;
}

// Extension X3 — ablation: MX registration cache disabled.
// The paper notes (Sec. 6.4): "when we disable the Myrinet registration
// cache, the effect of buffer re-use decreases to a maximum of ~1.25" —
// with no cache, both re-use patterns pay registration, so the ratio
// collapses. We sweep the cache bound as well to show the thrash point
// moving.
#include <cstdio>

#include "core/report.hpp"
#include "core/runners.hpp"

using namespace fabsim;
using namespace fabsim::core;

namespace {

double ratio_at(NetworkProfile p, std::uint32_t msg, Report* report = nullptr,
                const char* tag = nullptr) {
  if (report != nullptr) {
    // Probe variant: keep the cold-pattern latency distribution and the
    // metric dump (reg_cache hits/misses/evictions tell the whole story).
    Histogram cold_hist;
    MetricRegistry metrics;
    const double cold = bufreuse_latency_us(p, msg, /*reuse=*/false, 16, 24, &cold_hist,
                                            &metrics);
    const double warm = bufreuse_latency_us(p, msg, /*reuse=*/true, 16, 24);
    report->add_histogram(std::string(tag) + ".cold_latency_us", cold_hist);
    report->add_metrics(metrics, std::string(tag) + ".");
    return cold / warm;
  }
  return bufreuse_latency_us(p, msg, /*reuse=*/false, 16, 24) /
         bufreuse_latency_us(p, msg, /*reuse=*/true, 16, 24);
}

}  // namespace

int main() {
  std::printf("=== Extension X3: MX registration-cache ablation (Fig 6 note) ===\n");
  // Probe at this size: past the default 8 MB pinned-byte bound for 16
  // buffers, i.e. inside the thrash regime the ablation is about.
  constexpr std::uint32_t kProbeMsg = 524288;

  Report report("ext_ablation_regcache");
  report.add_note("MX registration-cache ablation: buffer re-use ratio vs cache config");
  report.add_note("probe: cold-pattern histograms + reg_cache metrics at msg=512KB, cache on/off");

  Table table("Buffer re-use ratio on MXoM", "msg_bytes",
              {"cache on", "cache off", "cache 2MB", "cache 32MB"});
  for (std::uint32_t msg : {32768u, 131072u, 262144u, 524288u, 1u << 20}) {
    NetworkProfile on = mxom_profile();
    NetworkProfile off = mxom_profile();
    off.mx.reg_cache_enabled = false;
    NetworkProfile small = mxom_profile();
    small.mx.reg_cache_bytes = 2ull << 20;
    NetworkProfile large = mxom_profile();
    large.mx.reg_cache_bytes = 32ull << 20;
    const bool probe = msg == kProbeMsg;
    table.add_row(msg, {ratio_at(on, msg, probe ? &report : nullptr, "cache_on"),
                        ratio_at(off, msg, probe ? &report : nullptr, "cache_off"),
                        ratio_at(small, msg), ratio_at(large, msg)});
  }
  table.print();
  report.add_table(table);
  report.write();

  std::printf(
      "\nExpected shape: with the cache on, the ratio climbs once 16 buffers no\n"
      "longer fit in the pinned-byte bound (default 8 MB -> ~512 KB+ messages).\n"
      "With the cache off both patterns register every time: ratio ~1 (the\n"
      "paper still saw ~1.25 from TLB/page-table warmth, which our flat\n"
      "registration-cost model does not include — see EXPERIMENTS.md). A\n"
      "smaller bound moves the thrash point left; a larger bound defers it.\n");
  return 0;
}

// Figure 7: effect of the unexpected-message queue on latency. Each side
// first floods the other with `depth` small unexpected messages, then the
// two sides run a synchronous-send ping-pong; the reported value is the
// ratio of loaded-queue latency to empty-queue latency.
#include <cstdio>

#include "core/report.hpp"
#include "core/runners.hpp"

using namespace fabsim;
using namespace fabsim::core;

int main(int argc, char**) {
  const bool quick = argc > 1;
  const auto networks = {Network::kIwarp, Network::kIb, Network::kMxoe, Network::kMxom};
  std::printf("=== Figure 7: unexpected-message queue effect (paper Sec. 6.5.1) ===\n");

  const std::vector<int> depths = quick ? std::vector<int>{64, 256} :
                                          std::vector<int>{16, 64, 128, 256, 512};
  // FabricScope probe configuration (present in both depth sweeps).
  constexpr std::uint32_t kProbeMsg = 1024;
  constexpr int kProbeDepth = 256;

  Report report("fig7_unexpected_queue");
  report.add_note("unexpected-message queue effect: loaded/empty latency ratio");
  report.add_note("probe: loaded half-RTT histogram + metrics at msg=1024B depth=256");

  for (std::uint32_t msg : {16u, 1024u, 4096u, 16384u, 65536u}) {
    std::vector<std::string> cols;
    for (Network n : networks) cols.push_back(network_name(n));
    Table ratio("Loaded/empty latency ratio, msg=" + std::to_string(msg) + "B",
                "queue_depth", cols);
    std::vector<double> base;
    for (Network n : networks) {
      base.push_back(unexpected_queue_latency_us(profile(n), msg, 0));
    }
    for (int depth : depths) {
      std::vector<double> row;
      int i = 0;
      for (Network n : networks) {
        double loaded = 0;
        if (msg == kProbeMsg && depth == kProbeDepth) {
          Histogram hist;
          MetricRegistry metrics;
          loaded = unexpected_queue_latency_us(profile(n), msg, depth, 16, &hist, &metrics);
          report.add_histogram(std::string(network_name(n)) + ".loaded_latency_us", hist);
          report.add_metrics(metrics, std::string(network_name(n)) + ".");
        } else {
          loaded = unexpected_queue_latency_us(profile(n), msg, depth);
        }
        row.push_back(loaded / base[static_cast<std::size_t>(i++)]);
      }
      ratio.add_row(depth, std::move(row));
    }
    ratio.print();
    report.add_table(ratio);
  }

  report.write();

  std::printf(
      "\nPaper reference shape: small and medium messages suffer considerably\n"
      "from a loaded unexpected queue; large messages barely (especially on\n"
      "iWARP). MPICH-MX is best for both Myrinet and Ethernet because MX\n"
      "offloads unexpected-message handling to the NIC.\n");
  return 0;
}

// Extension X11 — bandwidth degradation under injected frame loss.
//
// A seeded FaultPlan on the engine drops a fraction of all frames at the
// switch, and each stack's recovery machinery pays for the repair: iWARP
// re-runs its TCP go-back-N, the IB HCA its RC end-to-end retransmission
// (PSN/ack/timeout), and the MX firmware its resend queue. The sweep
// (loss rate x message size, per stack) charts how gracefully each
// recovery scheme degrades: sliding-window protocols with NAK-driven
// repair keep the pipe fuller than the MX RTO-only scheme, and large
// messages amortize a retransmission round far better than small ones.
//
// Recovery counters (retransmits, NAKs, RTO fires) are read from the
// FabricScope metric registry populated by Cluster::collect_metrics(),
// not from ad-hoc component accessors, so the numbers printed here are
// exactly the ones every other bench dumps in its JSON report. Results
// land in results/ext_faults.{txt,csv,json} via the shared Report helper.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/report.hpp"
#include "fault/plan.hpp"

using namespace fabsim;
using namespace fabsim::core;

namespace {

struct Sample {
  std::string stack;
  double loss = 0.0;
  std::uint32_t bytes = 0;
  double mbps = 0.0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t retransmits = 0;  ///< resends for MX
  std::uint64_t naks = 0;         ///< IB only: RC NAK packets
  std::uint64_t rto_fires = 0;
};

constexpr std::uint64_t kSeed = 42;

/// Sum a per-node counter over both endpoints.
std::uint64_t both_nodes(const MetricRegistry& registry, const std::string& stack,
                         const std::string& name) {
  return registry.counter_value(stack + ".node0." + name) +
         registry.counter_value(stack + ".node1." + name);
}

/// `iters` back-to-back RDMA Writes of `len` bytes, node 0 -> node 1,
/// completion observed by polling the target buffer (watch_placement).
/// When `out` is non-null it receives the run's full metric registry;
/// `hist` collects per-transfer completion times (loss makes a tail).
Sample run_verbs(NetworkProfile profile, double loss, std::uint32_t len, int iters,
                 MetricRegistry* out = nullptr, Histogram* hist = nullptr) {
  Cluster cluster(2, profile);
  fault::FaultPlan plan(kSeed);
  if (loss > 0.0) plan.drop_probability(loss);
  cluster.engine().set_fault_injector(&plan);
  MetricRegistry registry;
  cluster.engine().set_metrics(&registry);
  auto& src = cluster.node(0).mem().alloc(len, false);
  auto& dst = cluster.node(1).mem().alloc(len, false);

  verbs::CompletionQueue cq(cluster.engine());
  std::vector<std::unique_ptr<verbs::QueuePair>> qps;
  Time start = 0, end = 0;
  cluster.engine().spawn([](Cluster& c, verbs::CompletionQueue& wcq,
                            std::vector<std::unique_ptr<verbs::QueuePair>>& pairs,
                            std::uint64_t s, std::uint64_t d, std::uint32_t n, int reps,
                            Time* t0, Time* t1, Histogram* h) -> Task<> {
    pairs.push_back(c.device(0).create_qp(wcq, wcq));
    pairs.push_back(c.device(1).create_qp(wcq, wcq));
    c.device(0).establish(*pairs[0], *pairs[1]);
    auto lkey = co_await c.device(0).reg_mr(s, n);
    auto rkey = co_await c.device(1).reg_mr(d, n);
    *t0 = c.engine().now();
    for (int i = 0; i < reps; ++i) {
      const Time iter0 = c.engine().now();
      auto watch = c.device(1).watch_placement(d, n);
      co_await pairs[0]->post_send(verbs::SendWr{.wr_id = 1,
                                                 .opcode = verbs::Opcode::kRdmaWrite,
                                                 .sge = {s, n, lkey},
                                                 .remote_addr = d,
                                                 .rkey = rkey});
      co_await watch->wait();
      if (h != nullptr) h->add(to_us(c.engine().now() - iter0));
    }
    *t1 = c.engine().now();
  }(cluster, cq, qps, src.addr(), dst.addr(), len, iters, &start, &end, hist));
  cluster.engine().run();
  cluster.collect_metrics(registry);

  Sample sample;
  sample.stack = network_name(profile.network);
  sample.loss = loss;
  sample.bytes = len;
  sample.mbps = static_cast<double>(iters) * len / to_us(end - start);
  sample.frames_dropped = plan.frames_dropped();
  const bool is_ib = profile.network == Network::kIb;
  const std::string stack = is_ib ? "ib" : "iwarp";
  sample.retransmits = both_nodes(registry, stack, "retransmits");
  sample.naks = is_ib ? both_nodes(registry, stack, "naks_sent") : 0;
  sample.rto_fires = both_nodes(registry, stack, "rto_fires");
  if (out != nullptr) *out = registry;
  return sample;
}

/// `iters` back-to-back MX messages of `len` bytes, node 0 -> node 1.
Sample run_mx(double loss, std::uint32_t len, int iters, MetricRegistry* out = nullptr,
              Histogram* hist = nullptr) {
  NetworkProfile profile = mxoe_profile();
  Cluster cluster(2, profile);
  fault::FaultPlan plan(kSeed);
  if (loss > 0.0) plan.drop_probability(loss);
  cluster.engine().set_fault_injector(&plan);
  MetricRegistry registry;
  cluster.engine().set_metrics(&registry);
  auto& src = cluster.node(0).mem().alloc(len, false);
  auto& dst = cluster.node(1).mem().alloc(len, false);

  Time start = 0, end = 0;
  cluster.engine().spawn([](Cluster& c, std::uint64_t s, std::uint32_t n, int reps,
                            Time* t0, Histogram* h) -> Task<> {
    *t0 = c.engine().now();
    for (int i = 0; i < reps; ++i) {
      const Time iter0 = c.engine().now();
      auto request = co_await c.endpoint(0).isend(s, n, c.endpoint(1).port(), 7);
      co_await c.endpoint(0).wait(request);
      if (h != nullptr) h->add(to_us(c.engine().now() - iter0));
    }
  }(cluster, src.addr(), len, iters, &start, hist));
  cluster.engine().spawn([](Cluster& c, std::uint64_t d, std::uint32_t n, int reps,
                            Time* t1) -> Task<> {
    for (int i = 0; i < reps; ++i) {
      auto request = co_await c.endpoint(1).irecv(d, n, 7, ~0ull);
      co_await c.endpoint(1).wait(request);
    }
    *t1 = c.engine().now();
  }(cluster, dst.addr(), len, iters, &end));
  cluster.engine().run();
  cluster.collect_metrics(registry);

  Sample sample;
  sample.stack = network_name(Network::kMxoe);
  sample.loss = loss;
  sample.bytes = len;
  sample.mbps = static_cast<double>(iters) * len / to_us(end - start);
  sample.frames_dropped = plan.frames_dropped();
  sample.retransmits = both_nodes(registry, "mx", "resends");
  sample.rto_fires = both_nodes(registry, "mx", "rto_fires");
  if (out != nullptr) *out = registry;
  return sample;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "quick";
  std::printf("=== Extension X11: bandwidth degradation under frame loss ===\n");

  const std::vector<double> losses =
      quick ? std::vector<double>{0.0, 0.01}
            : std::vector<double>{0.0, 0.0005, 0.002, 0.01, 0.05};
  const std::vector<std::uint32_t> sizes =
      quick ? std::vector<std::uint32_t>{64 * 1024}
            : std::vector<std::uint32_t>{4 * 1024, 64 * 1024, 1024 * 1024};
  const int iters = quick ? 4 : 8;
  // Recovery-counter tables and the full metric dump use this size
  // (present in both sweep variants) at each loss rate.
  constexpr std::uint32_t kProbeBytes = 64 * 1024;
  const double worst_loss = losses.back();

  Report report("ext_faults");
  report.add_note("seeded frame loss (seed=42): bandwidth + recovery counters per stack");
  report.add_note("recovery counters read from the FabricScope metric registry");
  report.add_scalar("seed", static_cast<double>(kSeed));

  std::vector<Sample> samples;
  for (const char* stack : {"iWARP", "IB", "MXoE"}) {
    std::vector<std::string> columns;
    for (double loss : losses) columns.push_back("loss " + std::to_string(loss));
    Table table(std::string(stack) + " bandwidth MB/s vs loss rate", "msg_bytes", columns);
    for (std::uint32_t size : sizes) {
      std::vector<double> row;
      for (double loss : losses) {
        MetricRegistry probe;
        Histogram hist;
        const bool dump = size == kProbeBytes && loss == worst_loss;
        MetricRegistry* out = dump ? &probe : nullptr;
        Histogram* h = dump ? &hist : nullptr;
        Sample s = std::string(stack) == "iWARP"
                       ? run_verbs(iwarp_profile(), loss, size, iters, out, h)
                   : std::string(stack) == "IB"
                       ? run_verbs(ib_profile(), loss, size, iters, out, h)
                       : run_mx(loss, size, iters, out, h);
        if (dump) {
          report.add_metrics(probe, std::string(stack) + ".");
          report.add_histogram(std::string(stack) + ".transfer_us", hist);
        }
        row.push_back(s.mbps);
        samples.push_back(std::move(s));
      }
      table.add_row(size, std::move(row));
    }
    table.print();
    report.add_table(table);
  }

  // Recovery counters per stack at the probe message size: how each
  // protocol actually repaired the injected gaps.
  for (const char* stack : {"iWARP", "IB", "MXoE"}) {
    Table recovery(std::string(stack) + " recovery counters, msg=" +
                       std::to_string(kProbeBytes) + "B",
                   "loss_rate", {"frames_dropped", "retransmits", "naks_sent", "rto_fires"});
    for (const Sample& s : samples) {
      if (s.stack != stack || s.bytes != kProbeBytes) continue;
      recovery.add_row(s.loss, {static_cast<double>(s.frames_dropped),
                                static_cast<double>(s.retransmits),
                                static_cast<double>(s.naks),
                                static_cast<double>(s.rto_fires)});
    }
    recovery.print();
    report.add_table(recovery);
  }

  report.write();

  std::printf(
      "\nExpected shape: at zero loss every stack matches its lossless\n"
      "bandwidth exactly (the fault plan is inert and the recovery machinery\n"
      "stays cold). Under loss, go-back-N punishes large in-flight windows:\n"
      "IB RC keeps a whole message outstanding and retransmits all of it per\n"
      "gap, so its 1M curve collapses fastest; iWARP's 256K TCP window bounds\n"
      "each repair round; MX pays an RTO per first-in-window loss but resends\n"
      "only what is unacked. Small messages ride below the loss rate's\n"
      "per-message frame budget and barely notice.\n");
  return 0;
}

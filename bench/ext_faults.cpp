// Extension X11 — bandwidth degradation under injected frame loss.
//
// A seeded FaultPlan on the engine drops a fraction of all frames at the
// switch, and each stack's recovery machinery pays for the repair: iWARP
// re-runs its TCP go-back-N, the IB HCA its RC end-to-end retransmission
// (PSN/ack/timeout), and the MX firmware its resend queue. The sweep
// (loss rate x message size, per stack) charts how gracefully each
// recovery scheme degrades: sliding-window protocols with NAK-driven
// repair keep the pipe fuller than the MX RTO-only scheme, and large
// messages amortize a retransmission round far better than small ones.
//
// Results land in results/ext_faults.csv and results/ext_faults.json in
// addition to the stdout tables (run_all.sh captures those separately).
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/report.hpp"
#include "fault/plan.hpp"

using namespace fabsim;
using namespace fabsim::core;

namespace {

struct Sample {
  std::string stack;
  double loss = 0.0;
  std::uint32_t bytes = 0;
  double mbps = 0.0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t retransmits = 0;  ///< resends for MX
};

constexpr std::uint64_t kSeed = 42;

/// `iters` back-to-back RDMA Writes of `len` bytes, node 0 -> node 1,
/// completion observed by polling the target buffer (watch_placement).
Sample run_verbs(NetworkProfile profile, double loss, std::uint32_t len, int iters) {
  Cluster cluster(2, profile);
  fault::FaultPlan plan(kSeed);
  if (loss > 0.0) plan.drop_probability(loss);
  cluster.engine().set_fault_injector(&plan);
  auto& src = cluster.node(0).mem().alloc(len, false);
  auto& dst = cluster.node(1).mem().alloc(len, false);

  verbs::CompletionQueue cq(cluster.engine());
  std::vector<std::unique_ptr<verbs::QueuePair>> qps;
  Time start = 0, end = 0;
  cluster.engine().spawn([](Cluster& c, verbs::CompletionQueue& wcq,
                            std::vector<std::unique_ptr<verbs::QueuePair>>& pairs,
                            std::uint64_t s, std::uint64_t d, std::uint32_t n, int reps,
                            Time* t0, Time* t1) -> Task<> {
    pairs.push_back(c.device(0).create_qp(wcq, wcq));
    pairs.push_back(c.device(1).create_qp(wcq, wcq));
    c.device(0).establish(*pairs[0], *pairs[1]);
    auto lkey = co_await c.device(0).reg_mr(s, n);
    auto rkey = co_await c.device(1).reg_mr(d, n);
    *t0 = c.engine().now();
    for (int i = 0; i < reps; ++i) {
      auto watch = c.device(1).watch_placement(d, n);
      co_await pairs[0]->post_send(verbs::SendWr{.wr_id = 1,
                                                 .opcode = verbs::Opcode::kRdmaWrite,
                                                 .sge = {s, n, lkey},
                                                 .remote_addr = d,
                                                 .rkey = rkey});
      co_await watch->wait();
    }
    *t1 = c.engine().now();
  }(cluster, cq, qps, src.addr(), dst.addr(), len, iters, &start, &end));
  cluster.engine().run();

  Sample sample;
  sample.stack = network_name(profile.network);
  sample.loss = loss;
  sample.bytes = len;
  sample.mbps = static_cast<double>(iters) * len / to_us(end - start);
  sample.frames_dropped = plan.frames_dropped();
  sample.retransmits = profile.network == Network::kIb ? cluster.hca(0).retransmits()
                                                       : cluster.rnic(0).retransmits();
  return sample;
}

/// `iters` back-to-back MX messages of `len` bytes, node 0 -> node 1.
Sample run_mx(double loss, std::uint32_t len, int iters) {
  NetworkProfile profile = mxoe_profile();
  Cluster cluster(2, profile);
  fault::FaultPlan plan(kSeed);
  if (loss > 0.0) plan.drop_probability(loss);
  cluster.engine().set_fault_injector(&plan);
  auto& src = cluster.node(0).mem().alloc(len, false);
  auto& dst = cluster.node(1).mem().alloc(len, false);

  Time start = 0, end = 0;
  cluster.engine().spawn([](Cluster& c, std::uint64_t s, std::uint32_t n, int reps,
                            Time* t0) -> Task<> {
    *t0 = c.engine().now();
    for (int i = 0; i < reps; ++i) {
      auto request = co_await c.endpoint(0).isend(s, n, c.endpoint(1).port(), 7);
      co_await c.endpoint(0).wait(request);
    }
  }(cluster, src.addr(), len, iters, &start));
  cluster.engine().spawn([](Cluster& c, std::uint64_t d, std::uint32_t n, int reps,
                            Time* t1) -> Task<> {
    for (int i = 0; i < reps; ++i) {
      auto request = co_await c.endpoint(1).irecv(d, n, 7, ~0ull);
      co_await c.endpoint(1).wait(request);
    }
    *t1 = c.engine().now();
  }(cluster, dst.addr(), len, iters, &end));
  cluster.engine().run();

  Sample sample;
  sample.stack = network_name(Network::kMxoe);
  sample.loss = loss;
  sample.bytes = len;
  sample.mbps = static_cast<double>(iters) * len / to_us(end - start);
  sample.frames_dropped = plan.frames_dropped();
  sample.retransmits = cluster.endpoint(0).resends() + cluster.endpoint(1).resends();
  return sample;
}

void write_outputs(const std::vector<Sample>& samples) {
  std::filesystem::create_directories("results");

  if (std::FILE* csv = std::fopen("results/ext_faults.csv", "w")) {
    std::fprintf(csv, "stack,loss_rate,bytes,bandwidth_mbps,frames_dropped,retransmits\n");
    for (const Sample& s : samples) {
      std::fprintf(csv, "%s,%.4f,%u,%.3f,%llu,%llu\n", s.stack.c_str(), s.loss, s.bytes, s.mbps,
                   static_cast<unsigned long long>(s.frames_dropped),
                   static_cast<unsigned long long>(s.retransmits));
    }
    std::fclose(csv);
  }

  if (std::FILE* json = std::fopen("results/ext_faults.json", "w")) {
    std::fprintf(json, "{\n  \"seed\": %llu,\n  \"samples\": [\n",
                 static_cast<unsigned long long>(kSeed));
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const Sample& s = samples[i];
      std::fprintf(json,
                   "    {\"stack\": \"%s\", \"loss_rate\": %.4f, \"bytes\": %u, "
                   "\"bandwidth_mbps\": %.3f, \"frames_dropped\": %llu, \"retransmits\": %llu}%s\n",
                   s.stack.c_str(), s.loss, s.bytes, s.mbps,
                   static_cast<unsigned long long>(s.frames_dropped),
                   static_cast<unsigned long long>(s.retransmits),
                   i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
  }
  std::printf("\nwrote results/ext_faults.csv and results/ext_faults.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "quick";
  std::printf("=== Extension X11: bandwidth degradation under frame loss ===\n");

  const std::vector<double> losses =
      quick ? std::vector<double>{0.0, 0.01}
            : std::vector<double>{0.0, 0.0005, 0.002, 0.01, 0.05};
  const std::vector<std::uint32_t> sizes =
      quick ? std::vector<std::uint32_t>{64 * 1024}
            : std::vector<std::uint32_t>{4 * 1024, 64 * 1024, 1024 * 1024};
  const int iters = quick ? 4 : 8;

  std::vector<Sample> samples;
  for (const char* stack : {"iWARP", "IB", "MXoE"}) {
    std::vector<std::string> columns;
    for (double loss : losses) columns.push_back("loss " + std::to_string(loss));
    Table table(std::string(stack) + " bandwidth MB/s vs loss rate", "msg_bytes", columns);
    for (std::uint32_t size : sizes) {
      std::vector<double> row;
      for (double loss : losses) {
        Sample s = std::string(stack) == "iWARP" ? run_verbs(iwarp_profile(), loss, size, iters)
                   : std::string(stack) == "IB"  ? run_verbs(ib_profile(), loss, size, iters)
                                                 : run_mx(loss, size, iters);
        row.push_back(s.mbps);
        samples.push_back(std::move(s));
      }
      table.add_row(size, std::move(row));
    }
    table.print();
  }

  std::printf(
      "\nExpected shape: at zero loss every stack matches its lossless\n"
      "bandwidth exactly (the fault plan is inert and the recovery machinery\n"
      "stays cold). Under loss, go-back-N punishes large in-flight windows:\n"
      "IB RC keeps a whole message outstanding and retransmits all of it per\n"
      "gap, so its 1M curve collapses fastest; iWARP's 256K TCP window bounds\n"
      "each repair round; MX pays an RTO per first-in-window loss but resends\n"
      "only what is unacked. Small messages ride below the loss rate's\n"
      "per-message frame budget and barely notice.\n");

  write_outputs(samples);
  return 0;
}

// Extension X5 — collective operations on the 4-node testbed (the paper
// defers application-level and larger-scale evaluation to future work;
// collectives are the first step above point-to-point).
#include <cstdio>
#include <vector>

#include "core/cluster.hpp"
#include "core/report.hpp"

using namespace fabsim;
using namespace fabsim::core;

namespace {

enum class Op { kBarrier, kBcast, kAllreduce, kAllgather };

double collective_us(Network network, Op op, std::uint32_t bytes, int iters = 12,
                     Histogram* hist = nullptr, MetricRegistry* metrics = nullptr) {
  constexpr int kRanks = 4;
  Cluster cluster(kRanks, network);
  if (metrics != nullptr) cluster.engine().set_metrics(metrics);
  std::vector<hw::Buffer*> data, scratch, gather;
  for (int r = 0; r < kRanks; ++r) {
    data.push_back(&cluster.node(r).mem().alloc(std::max(bytes, 64u), false));
    scratch.push_back(&cluster.node(r).mem().alloc(std::max(bytes, 64u), false));
    gather.push_back(&cluster.node(r).mem().alloc(std::max(bytes, 64u) * kRanks, false));
  }

  std::vector<double> elapsed(kRanks, 0);
  for (int r = 0; r < kRanks; ++r) {
    cluster.engine().spawn([](Cluster& c, int me, Op what, std::uint32_t n, int it,
                              std::vector<hw::Buffer*>& d, std::vector<hw::Buffer*>& s,
                              std::vector<hw::Buffer*>& g, double* out, Histogram* h) -> Task<> {
      co_await c.setup_mpi();
      auto& rank = c.mpi_rank(me);
      co_await rank.barrier();  // warmup + sync
      const double t0 = rank.wtime();
      const auto idx = static_cast<std::size_t>(me);
      for (int i = 0; i < it; ++i) {
        const double iter0 = rank.wtime();
        switch (what) {
          case Op::kBarrier:
            co_await rank.barrier();
            break;
          case Op::kBcast:
            co_await rank.bcast(0, d[idx]->addr(), n);
            break;
          case Op::kAllreduce:
            co_await rank.allreduce_sum(d[idx]->addr(), s[idx]->addr(),
                                        n / sizeof(double));
            break;
          case Op::kAllgather:
            co_await rank.allgather(d[idx]->addr(), n, g[idx]->addr());
            break;
        }
        if (h != nullptr && me == 0) h->add((rank.wtime() - iter0) * 1e6);
      }
      *out = (rank.wtime() - t0) / it * 1e6;
    }(cluster, r, op, bytes, iters, data, scratch, gather,
      &elapsed[static_cast<std::size_t>(r)], hist));
  }
  cluster.engine().run();
  if (metrics != nullptr) cluster.collect_metrics(*metrics);
  double worst = 0;
  for (double e : elapsed) worst = std::max(worst, e);
  return worst;
}

}  // namespace

int main() {
  const auto networks = {Network::kIwarp, Network::kIb, Network::kMxoe, Network::kMxom};
  constexpr std::uint32_t kProbeBytes = 4096;
  std::printf("=== Extension X5: MPI collectives on 4 nodes ===\n");

  Report report("ext_collectives");
  report.add_note("barrier/bcast/allreduce/allgather on 4 ranks");
  report.add_note("probe: rank-0 per-iteration allreduce histogram + metrics at 4KB");

  std::vector<std::string> cols;
  for (Network n : networks) cols.push_back(network_name(n));

  {
    Table table("Barrier latency (us)", "ranks", cols);
    std::vector<double> row;
    for (Network n : networks) row.push_back(collective_us(n, Op::kBarrier, 0));
    table.add_row(4, std::move(row));
    table.print();
    report.add_table(table);
  }
  for (auto [op, name] : {std::pair{Op::kBcast, "Broadcast"},
                          std::pair{Op::kAllreduce, "Allreduce (sum of doubles)"},
                          std::pair{Op::kAllgather, "Allgather (per-rank block)"}}) {
    Table table(std::string(name) + " latency (us)", "bytes", cols);
    for (std::uint32_t bytes : {64u, 4096u, 65536u, 524288u}) {
      std::vector<double> row;
      for (Network n : networks) {
        if (op == Op::kAllreduce && bytes == kProbeBytes) {
          Histogram hist;
          MetricRegistry metrics;
          row.push_back(collective_us(n, op, bytes, 12, &hist, &metrics));
          report.add_histogram(std::string(network_name(n)) + ".allreduce_us", hist);
          report.add_metrics(metrics, std::string(network_name(n)) + ".");
        } else {
          row.push_back(collective_us(n, op, bytes));
        }
      }
      table.add_row(bytes, std::move(row));
    }
    table.print();
    report.add_table(table);
  }

  report.write();

  std::printf(
      "\nExpected shape: short-message collectives track point-to-point latency\n"
      "(Myrinet < IB < iWARP); large-message collectives track bandwidth, where\n"
      "IB leads and iWARP's PCI-X ceiling shows.\n");
  return 0;
}

// Extension X11 — incast and permutation traffic on multi-stage Clos
// fabrics (FabricTopo). The four-node testbed of the paper cannot show
// how the three interconnects behave at scale; here the same calibrated
// stacks drive 64-512 endpoints through 2- and 3-level folded Clos
// fabrics with bounded switch buffers, where their link layers diverge
// structurally: iWARP and MXoE ride lossy Ethernet (tail-drop, go-back-N
// recovery), IB rides credit flow control (lossless, but congestion
// spreads hop by hop as credit stalls). Incast shows the loss-recovery
// tail; permutation shows how much of the bisection each stack keeps.
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/cluster.hpp"
#include "core/report.hpp"

using namespace fabsim;
using namespace fabsim::core;

namespace {

struct Pattern {
  std::vector<std::pair<int, int>> flows;  // (src, dst)
};

Pattern incast(int senders, int dst) {
  Pattern p;
  for (int s = 1; s <= senders; ++s) p.flows.emplace_back(s, dst);
  return p;
}

Pattern permutation(int endpoints) {
  Pattern p;
  for (int n = 0; n < endpoints; ++n) p.flows.emplace_back(n, (n + endpoints / 2) % endpoints);
  return p;
}

struct RunStats {
  double completion_ms = 0.0;  // pattern makespan
  double p50_us = 0.0;         // per-chunk completion latency
  double p99_us = 0.0;
  double goodput_mbps = 0.0;  // aggregate delivered bytes / makespan
  std::uint64_t tail_drops = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t credit_stalls = 0;
};

/// Drive `pattern` over a Clos fabric: every flow pushes
/// `chunks` x `chunk` bytes with stack-native primitives (RDMA write for
/// the verbs stacks, matched rendezvous sends for MX) and the per-chunk
/// completion time lands in one shared histogram.
RunStats run(Network network, const topo::FabricSpec& spec, int endpoints,
             const Pattern& pattern, std::uint32_t chunk, int chunks,
             std::uint64_t buffer_bytes, Histogram* hist_out = nullptr,
             MetricRegistry* metrics_out = nullptr) {
  NetworkProfile p = profile(network);
  const hw::FlowControl link_layer = p.fabric.flow;  // the network's, not the sweep's
  p.fabric = spec;
  p.fabric.flow = link_layer;
  p.switch_cfg.max_queue_bytes = buffer_bytes;
  p.rnic.rto = us(300);  // keep go-back-N rounds short at this scale
  Cluster cluster(endpoints, p);
  MetricRegistry registry;
  cluster.engine().set_metrics(&registry);

  Histogram hist;
  Time makespan = 0;
  std::vector<std::unique_ptr<verbs::CompletionQueue>> cqs;
  std::vector<std::unique_ptr<verbs::QueuePair>> qps;

  for (std::size_t f = 0; f < pattern.flows.size(); ++f) {
    const auto [src, dst] = pattern.flows[f];
    auto& src_buf = cluster.node(src).mem().alloc(chunk, false);
    auto& dst_buf = cluster.node(dst).mem().alloc(chunk, false);
    if (cluster.is_verbs()) {
      cqs.push_back(std::make_unique<verbs::CompletionQueue>(cluster.engine()));
      auto dst_qp = cluster.device(dst).create_qp(*cqs.back(), *cqs.back());
      auto src_qp = cluster.device(src).create_qp(*cqs.back(), *cqs.back());
      cluster.device(dst).establish(*dst_qp, *src_qp);
      cluster.engine().spawn([](Cluster& cl, verbs::QueuePair& qp, int s, int d,
                                std::uint64_t saddr, std::uint64_t daddr, std::uint32_t n,
                                int count, Histogram* h, Time* end) -> Task<> {
        auto lkey = co_await cl.device(s).reg_mr(saddr, n);
        auto rkey = co_await cl.device(d).reg_mr(daddr, n);
        for (int i = 0; i < count; ++i) {
          const Time chunk0 = cl.engine().now();
          auto watch = cl.device(d).watch_placement(daddr, n);
          co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                              .opcode = verbs::Opcode::kRdmaWrite,
                                              .sge = {saddr, n, lkey},
                                              .remote_addr = daddr,
                                              .rkey = rkey});
          co_await watch->wait();
          h->add(to_us(cl.engine().now() - chunk0));
          *end = std::max(*end, cl.engine().now());
        }
      }(cluster, *src_qp, src, dst, src_buf.addr(), dst_buf.addr(), chunk, chunks, &hist,
        &makespan));
      qps.push_back(std::move(dst_qp));
      qps.push_back(std::move(src_qp));
    } else {
      // MX: matched rendezvous pairs; the sender's wait completes once the
      // receiver pulled the data, so sender-side timing sees the fabric.
      const std::uint64_t match = 0x1000 + f;
      cluster.engine().spawn([](Cluster& cl, int s, int d, std::uint64_t saddr, std::uint32_t n,
                                int count, std::uint64_t bits, Histogram* h,
                                Time* end) -> Task<> {
        for (int i = 0; i < count; ++i) {
          const Time chunk0 = cl.engine().now();
          auto req = co_await cl.endpoint(s).isend(saddr, n, cl.endpoint(d).port(), bits);
          co_await cl.endpoint(s).wait(req);
          h->add(to_us(cl.engine().now() - chunk0));
          *end = std::max(*end, cl.engine().now());
        }
      }(cluster, src, dst, src_buf.addr(), chunk, chunks, match, &hist, &makespan));
      cluster.engine().spawn([](Cluster& cl, int d, std::uint64_t daddr, std::uint32_t n,
                                int count, std::uint64_t bits) -> Task<> {
        for (int i = 0; i < count; ++i) {
          auto req = co_await cl.endpoint(d).irecv(daddr, n, bits, ~0ull);
          co_await cl.endpoint(d).wait(req);
        }
      }(cluster, dst, dst_buf.addr(), chunk, chunks, match));
    }
  }
  cluster.engine().run();
  cluster.collect_metrics(registry);

  RunStats stats;
  stats.completion_ms = to_us(makespan) / 1000.0;
  stats.p50_us = hist.p50();
  stats.p99_us = hist.p99();
  const double total_bytes =
      static_cast<double>(pattern.flows.size()) * chunks * static_cast<double>(chunk);
  stats.goodput_mbps = total_bytes / to_us(makespan);
  stats.tail_drops = registry.counter_value("switch.tail_drops");
  stats.credit_stalls = registry.counter_value("switch.credit_stalls");
  for (int n = 0; n < endpoints; ++n) {
    const std::string node = "node" + std::to_string(n);
    stats.retransmits += registry.counter_value("iwarp." + node + ".retransmits");
    stats.retransmits += registry.counter_value("ib." + node + ".retransmits");
    stats.retransmits += registry.counter_value("mx." + node + ".resends");
  }
  if (hist_out != nullptr) *hist_out = hist;
  if (metrics_out != nullptr) *metrics_out = registry;
  return stats;
}

struct Fabric {
  const char* label;
  topo::FabricSpec spec;
  int endpoints;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool full_metrics = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "quick") quick = true;
    if (arg == "--full") full_metrics = true;
  }
  const auto networks = {Network::kIwarp, Network::kIb, Network::kMxoe};
  constexpr std::uint32_t kChunk = 64 * 1024;  // above every eager threshold
  constexpr std::uint64_t kBuffer = 32ull << 10;

  std::printf("=== Extension X11: incast/permutation on Clos fabrics (%s) ===\n",
              quick ? "quick" : "full");

  Report report(quick ? "ext_incast_quick" : "ext_incast");
  report.add_note("Clos fabrics via topo::Topology; LFT routing; 32KB port buffers");
  report.add_note("link layer per stack: iWARP/MXoE lossy tail-drop, IB credit/PAUSE lossless");
  report.add_note(full_metrics
                      ? "probe: per-chunk completion histogram + full metrics at the incast peak"
                      : "probe: per-chunk completion histogram + aggregate metrics at the "
                        "incast peak (pass --full for per-node/per-port detail)");

  // --- Incast: M senders -> node 0 on one fabric --------------------------
  const topo::FabricSpec incast_spec =
      quick ? topo::FabricSpec{2, 16, 1.0} : topo::FabricSpec{3, 8, 1.0};
  const int incast_endpoints = quick ? 64 : 128;
  const std::vector<int> sender_counts = quick ? std::vector<int>{8} : std::vector<int>{8, 16, 32};
  const int incast_chunks = quick ? 2 : 4;
  const int probe_senders = sender_counts.back();

  std::vector<std::string> cols;
  for (Network n : networks) cols.push_back(network_name(n));
  Table p99_table("Incast per-chunk p99 latency (us), " + std::to_string(incast_endpoints) +
                      " endpoints, " + std::to_string(incast_spec.levels) + "-level Clos",
                  "senders", cols);
  Table done_table("Incast completion (ms)", "senders", cols);
  Table loss_table("Incast loss/backpressure: drops | retransmits | credit_stalls", "senders",
                   {"iWARP drops", "iWARP retx", "IB stalls", "MXoE drops", "MXoE resends"});
  for (int senders : sender_counts) {
    std::vector<double> p99_row, done_row;
    std::vector<double> loss_row(5, 0.0);
    for (Network n : networks) {
      RunStats s{};
      if (senders == probe_senders) {
        Histogram hist;
        MetricRegistry metrics;
        s = run(n, incast_spec, incast_endpoints, incast(senders, 0), kChunk, incast_chunks,
                kBuffer, &hist, &metrics);
        report.add_histogram(std::string(network_name(n)) + ".chunk_us", hist);
        if (full_metrics) {
          report.add_metrics(metrics, std::string(network_name(n)) + ".");
        } else {
          report.add_metrics_if(metrics, std::string(network_name(n)) + ".",
                                Report::aggregate_key);
        }
      } else {
        s = run(n, incast_spec, incast_endpoints, incast(senders, 0), kChunk, incast_chunks,
                kBuffer);
      }
      p99_row.push_back(s.p99_us);
      done_row.push_back(s.completion_ms);
      switch (n) {
        case Network::kIwarp:
          loss_row[0] = static_cast<double>(s.tail_drops);
          loss_row[1] = static_cast<double>(s.retransmits);
          break;
        case Network::kIb: loss_row[2] = static_cast<double>(s.credit_stalls); break;
        default:
          loss_row[3] = static_cast<double>(s.tail_drops);
          loss_row[4] = static_cast<double>(s.retransmits);
          break;
      }
    }
    p99_table.add_row(senders, std::move(p99_row));
    done_table.add_row(senders, std::move(done_row));
    loss_table.add_row(senders, std::move(loss_row));
  }
  p99_table.print();
  done_table.print();
  loss_table.print();
  report.add_table(p99_table);
  report.add_table(done_table);
  report.add_table(loss_table);

  // --- Permutation: node i -> node (i + N/2) % N, fabric-size sweep ------
  std::vector<Fabric> fabrics;
  fabrics.push_back({"64 (2-level r16)", topo::FabricSpec{2, 16, 1.0}, 64});
  if (!quick) {
    fabrics.push_back({"128 (3-level r8)", topo::FabricSpec{3, 8, 1.0}, 128});
    fabrics.push_back({"256 (3-level r12)", topo::FabricSpec{3, 12, 1.0}, 256});
  }
  const int perm_chunks = quick ? 1 : 2;

  Table perm_bw("Permutation aggregate goodput (MB/s)", "endpoints", cols);
  Table perm_p99("Permutation per-chunk p99 latency (us)", "endpoints", cols);
  for (const Fabric& fabric : fabrics) {
    std::vector<double> bw_row, p99_row;
    for (Network n : networks) {
      const RunStats s = run(n, fabric.spec, fabric.endpoints, permutation(fabric.endpoints),
                             kChunk, perm_chunks, kBuffer);
      bw_row.push_back(s.goodput_mbps);
      p99_row.push_back(s.p99_us);
    }
    perm_bw.add_row(fabric.endpoints, std::move(bw_row));
    perm_p99.add_row(fabric.endpoints, std::move(p99_row));
  }
  perm_bw.print();
  perm_p99.print();
  report.add_table(perm_bw);
  report.add_table(perm_p99);

  report.write();

  std::printf(
      "\nExpected shape: under incast the lossy stacks (iWARP, MXoE) overrun\n"
      "the server port's buffer — tail drops force go-back-N rounds and the\n"
      "p99 chunk latency stretches by whole retransmission timeouts — while\n"
      "IB's credit fabric never drops: backpressure shows up as credit\n"
      "stalls and a much tighter tail. Under permutation traffic the\n"
      "non-blocking Clos keeps per-flow goodput roughly flat as the fabric\n"
      "grows; deeper fabrics only add per-hop latency.\n");
  return 0;
}

// Headline summary table: every number the paper's abstract and body
// quote, side by side with this reproduction's measurement.
#include <cstdio>

#include "core/report.hpp"
#include "core/runners.hpp"

using namespace fabsim;
using namespace fabsim::core;

namespace {

void row(Report& report, const char* name, double paper, double measured, const char* unit) {
  const double dev = paper > 0 ? (measured - paper) / paper * 100.0 : 0.0;
  std::printf("  %-44s %10.2f %10.2f %-5s %+6.1f%%\n", name, paper, measured, unit, dev);
  report.add_scalar(std::string(name) + " (paper)", paper, unit);
  report.add_scalar(std::string(name) + " (measured)", measured, unit);
}

}  // namespace

int main() {
  std::printf("=== Headline comparison: paper vs. reproduction ===\n");
  std::printf("  %-44s %10s %10s %-5s %7s\n", "metric", "paper", "measured", "unit", "dev");

  const auto iw = profile(Network::kIwarp);
  const auto ib = profile(Network::kIb);
  const auto moe = profile(Network::kMxoe);
  const auto mom = profile(Network::kMxom);

  Report report("tab_headline");
  report.add_note("headline numbers: paper value vs reproduction, paired scalars");
  report.add_note("probe: MPI 4B ping-pong histogram + metrics per network");

  std::printf("-- user-level latency (4 B RDMA write / send-recv)\n");
  row(report, "iWARP verbs", 9.78, userlevel_pingpong_latency_us(iw, 4), "us");
  row(report, "IB verbs (VAPI)", 4.53, userlevel_pingpong_latency_us(ib, 4), "us");
  row(report, "MXoE", 3.45, userlevel_pingpong_latency_us(moe, 4), "us");
  row(report, "MXoM", 3.05, userlevel_pingpong_latency_us(mom, 4), "us");

  std::printf("-- user-level one-way bandwidth (4 MB)\n");
  row(report, "iWARP (83%% of internal PCI-X)", 880, userlevel_bandwidth_mbps(iw, 4 << 20, 4),
      "MB/s");
  row(report, "IB (97%% of 1 GB/s)", 970, userlevel_bandwidth_mbps(ib, 4 << 20, 4), "MB/s");
  row(report, "Myri-10G (<=75%% of 10G)", 930, userlevel_bandwidth_mbps(mom, 4 << 20, 4), "MB/s");

  std::printf("-- MPI short-message latency (4 B)\n");
  {
    const struct {
      const char* name;
      double paper;
      const NetworkProfile* p;
      Network n;
    } cases[] = {{"iWARP MPI", 10.7, &iw, Network::kIwarp},
                 {"IB ()", 4.8, &ib, Network::kIb},
                 {"MXoE (MPICH-MX)", 3.6, &moe, Network::kMxoe},
                 {"MXoM (MPICH-MX)", 3.3, &mom, Network::kMxom}};
    for (const auto& c : cases) {
      Histogram hist;
      MetricRegistry metrics;
      row(report, c.name, c.paper, mpi_pingpong_latency_us(*c.p, 4, 30, &hist, &metrics), "us");
      report.add_histogram(std::string(network_name(c.n)) + ".latency_us", hist);
      report.add_metrics(metrics, std::string(network_name(c.n)) + ".");
    }
  }

  std::printf("-- MPI peak bandwidths (1 MB)\n");
  row(report, "iWARP bidirectional", 856, mpi_bidir_bw_mbps(iw, 1 << 20, 8), "MB/s");
  row(report, "IB bidirectional", 960, mpi_bidir_bw_mbps(ib, 1 << 20, 8), "MB/s");
  row(report, "iWARP both-way (89%% of PCI-X)", 950, mpi_bothway_bw_mbps(iw, 1 << 20, 12, 3),
      "MB/s");
  row(report, "IB both-way (89%% of 2 GB/s)", 1780, mpi_bothway_bw_mbps(ib, 1 << 20, 12, 3),
      "MB/s");
  row(report, "Myri both-way (~70%% of 2 GB/s)", 1400, mpi_bothway_bw_mbps(mom, 1 << 20, 12, 3),
      "MB/s");

  std::printf("-- buffer re-use latency ratio peaks (Fig 6)\n");
  {
    auto ratio = [](const NetworkProfile& p, std::uint32_t m) {
      return bufreuse_latency_us(p, m, false) / bufreuse_latency_us(p, m, true);
    };
    row(report, "IB at 128 KB", 4.3, ratio(ib, 128 << 10), "x");
    row(report, "iWARP at 256 KB", 2.0, ratio(iw, 256 << 10), "x");
    row(report, "Myri-10G at 1 MB", 2.4, ratio(mom, 1 << 20), "x");
  }

  report.write();

  std::printf(
      "\nSee DESIGN.md for OCR-reconstruction notes on the paper values and\n"
      "EXPERIMENTS.md for the per-figure discussion.\n");
  return 0;
}

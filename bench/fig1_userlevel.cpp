// Figure 1: user-level inter-node ping-pong latency and one-way bandwidth
// for the four user-level communication libraries (iWARP verbs RDMA
// Write, IB verbs RDMA Write, MXoE send/recv, MXoM send/recv).
#include <cstdio>

#include "core/report.hpp"
#include "core/runners.hpp"

using namespace fabsim;
using namespace fabsim::core;

int main() {
  const auto networks = {Network::kIwarp, Network::kIb, Network::kMxoe, Network::kMxom};
  // FabricScope probe: at this message size, collect the per-iteration
  // latency distribution and the full metric registry for each network.
  constexpr std::uint32_t kProbeMsg = 1024;

  std::printf("=== Figure 1: user-level ping-pong (paper Sec. 5) ===\n");

  Report report("fig1_userlevel");
  report.add_note("user-level ping-pong latency and bandwidth, four libraries");
  report.add_note("probe: per-iteration half-RTT histogram + metrics at msg=1024B");

  Table latency("User-level inter-node latency (us, half RTT)", "msg_bytes",
                {"iWARP", "IB", "MXoE", "MXoM"});
  for (std::uint32_t msg : pow2_sizes(4, 16 * 1024)) {
    std::vector<double> row;
    for (Network n : networks) {
      if (msg == kProbeMsg) {
        Histogram hist;
        MetricRegistry metrics;
        row.push_back(userlevel_pingpong_latency_us(profile(n), msg, 30, &hist, &metrics));
        report.add_histogram(std::string(network_name(n)) + ".latency_us", hist);
        report.add_metrics(metrics, std::string(network_name(n)) + ".");
      } else {
        row.push_back(userlevel_pingpong_latency_us(profile(n), msg));
      }
    }
    latency.add_row(msg, std::move(row));
  }
  latency.print();

  Table bandwidth("User-level inter-node bandwidth (MB/s)", "msg_bytes",
                  {"iWARP", "IB", "MXoE", "MXoM"});
  for (std::uint32_t msg : pow2_sizes(1024, 4 << 20)) {
    std::vector<double> row;
    const int iters = msg >= (1 << 20) ? 4 : 10;
    for (Network n : networks) row.push_back(userlevel_bandwidth_mbps(profile(n), msg, iters));
    bandwidth.add_row(msg, std::move(row));
  }
  bandwidth.print();
  bandwidth.print_csv();

  report.add_table(latency);
  report.add_table(bandwidth);
  report.write();

  std::printf(
      "\nPaper reference points: short-message latency 9.78 (iWARP), 4.53 (IB),\n"
      "3.45 (MXoE), 3.05 (MXoM) us; peak one-way bandwidth ~880 (iWARP, 83%% of\n"
      "the internal PCI-X), ~970 (IB, 97%% of 4X SDR), <=75%% of 10G (Myri-10G).\n");
  return 0;
}
